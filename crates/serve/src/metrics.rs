//! Serve-side telemetry, designed like the simulator's `Recorder` layer
//! (`gables_soc_sim::telemetry`): the serving loop *hands data out* —
//! request outcomes, latencies, queue rejections — and observation never
//! influences behaviour. Counters are lock-free atomics updated on the
//! worker threads (a handful of relaxed adds per request, the serving
//! analog of the engine's always-on `BottleneckBreakdown` accumulation);
//! [`ServerMetrics::snapshot`] materializes a consistent-enough view for
//! the `/metrics` endpoint, and the snapshot — like the epoch timeline —
//! has JSON and text exporters.
//!
//! Latencies land in a log2 histogram over microseconds: bucket `i`
//! counts requests that took `< 2^i µs`, with one overflow bucket. That
//! spans 1 µs to ~2 s in [`LATENCY_BUCKETS`] fixed buckets with no
//! allocation on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use gables_model::json::Json;

/// Number of log2 latency buckets (the last is the overflow bucket).
pub const LATENCY_BUCKETS: usize = 22;

/// Maximum distinct route labels tracked before new ones aggregate under
/// `"(other)"`. The server already folds unknown paths into
/// `"(unmatched)"`, so this is a second fence: even a bug upstream can't
/// let a client grow the route map one label per arbitrary path.
pub const MAX_ROUTE_LABELS: usize = 64;

/// Maximum distinct span-phase labels tracked before new ones aggregate
/// under `"(other)"`. Phase names come from span names (`server.request`,
/// `dispatch /v1/eval`, `parse`, `eval`, `worker`, …), which are
/// low-cardinality by construction; this fence makes that a guarantee.
pub const MAX_PHASE_LABELS: usize = 64;

/// Lock-free request counters shared between the server loop, the
/// handlers (for cache attribution), and the `/metrics` endpoint.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    handled: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicU64,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    panics: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    latency_sum_us: AtomicU64,
    // Route labels are an open set (any path a client sends), so the
    // per-route counters live behind a mutex rather than fixed atomics;
    // one short-held lock per request, off every other hot path.
    routes: Mutex<BTreeMap<String, u64>>,
    // Accumulated span self-time per phase (span name), microseconds.
    // Same cardinality discipline as `routes`.
    phase_self_us: Mutex<BTreeMap<String, u64>>,
    // Per-route quantile sketches and windowed error rates for the SLO
    // engine; fed by the same `record_handled` call as everything else.
    slo: crate::slo::SloRegistry,
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fully processed request (any status) with its
    /// observed service latency.
    pub fn record_handled(&self, route: &str, status: u16, latency: Duration) {
        self.handled.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency[Self::bucket_for(latency)].fetch_add(1, Ordering::Relaxed);
        let latency_us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(latency_us, Ordering::Relaxed);
        self.slo.record(route, status, latency_us);
        let mut routes = self.routes.lock().expect("metrics route map poisoned");
        if routes.len() >= MAX_ROUTE_LABELS && !routes.contains_key(route) {
            *routes.entry("(other)".to_string()).or_insert(0) += 1;
        } else {
            *routes.entry(route.to_string()).or_insert(0) += 1;
        }
    }

    /// Accumulates one request's span *self time* (duration minus direct
    /// children, see [`gables_model::prof::self_times_us`]) under its
    /// phase label — where server-side time actually goes, per span
    /// name, feeding `gables_phase_self_seconds_total`.
    pub fn record_phase_self(&self, phase: &str, self_us: f64) {
        if !self_us.is_finite() || self_us <= 0.0 {
            return;
        }
        let us = self_us.round() as u64;
        let mut phases = self.phase_self_us.lock().expect("phase map poisoned");
        if phases.len() >= MAX_PHASE_LABELS && !phases.contains_key(phase) {
            *phases.entry("(other)".to_string()).or_insert(0) += us;
        } else {
            *phases.entry(phase.to_string()).or_insert(0) += us;
        }
    }

    /// The per-route SLO registry fed by [`Self::record_handled`] —
    /// quantile sketches and windowed error rates for `/v1/slo`.
    pub fn slo(&self) -> &crate::slo::SloRegistry {
        &self.slo
    }

    /// Records one connection refused by queue backpressure (503 sent
    /// from the accept loop; not counted as handled).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a caught handler panic (the request was answered with a
    /// structured 500 and the worker survived).
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a request as entering service. Pair with
    /// [`Self::exit_in_flight`].
    pub fn enter_in_flight(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a request as leaving service.
    pub fn exit_in_flight(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a response served from the cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response that had to be computed.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    fn bucket_for(latency: Duration) -> usize {
        let micros = latency.as_micros();
        for i in 0..LATENCY_BUCKETS - 1 {
            if micros < (1u128 << i) {
                return i;
            }
        }
        LATENCY_BUCKETS - 1
    }

    /// A point-in-time copy of every counter. Individual loads are
    /// relaxed, so a snapshot taken mid-request may be off by the
    /// in-flight request — fine for an operational endpoint.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            handled: self.handled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            status_2xx: self.status_2xx.load(Ordering::Relaxed),
            status_4xx: self.status_4xx.load(Ordering::Relaxed),
            status_5xx: self.status_5xx.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            latency: self
                .latency
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            routes: self
                .routes
                .lock()
                .expect("metrics route map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            phase_self_us: self
                .phase_self_us
                .lock()
                .expect("phase map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// A point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests fully processed (any status), excluding rejections.
    pub handled: u64,
    /// Connections refused by queue backpressure (503 at accept).
    pub rejected: u64,
    /// Requests currently in service.
    pub in_flight: u64,
    /// Responses with a 2xx status.
    pub status_2xx: u64,
    /// Responses with a 4xx status.
    pub status_4xx: u64,
    /// Responses with a 5xx status (handled, not accept-loop 503s).
    pub status_5xx: u64,
    /// Handler panics caught and answered with a structured 500.
    pub panics: u64,
    /// Responses served from the cache.
    pub cache_hits: u64,
    /// Responses computed on a cache miss.
    pub cache_misses: u64,
    /// Log2 latency histogram counts (see [`LATENCY_BUCKETS`]).
    pub latency: Vec<u64>,
    /// Sum of all observed service latencies, in microseconds.
    pub latency_sum_us: u64,
    /// Per-route handled counts, sorted by route.
    pub routes: Vec<(String, u64)>,
    /// Accumulated span self-time per phase (span name), microseconds,
    /// sorted by phase.
    pub phase_self_us: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Cache hits over cache-eligible requests, 0 when none were seen.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The human label of one latency bucket (`"<1us"`, `"<2us"`, …,
    /// `">=2.1s"` for the overflow bucket).
    pub fn bucket_label(i: usize) -> String {
        let mut out = String::with_capacity(8);
        Self::push_bucket_label(&mut out, i);
        out
    }

    /// Appends one latency bucket's label into `out` without
    /// allocating (beyond any growth of `out` itself) — the hot-path
    /// form [`Self::bucket_label`] wraps.
    pub fn push_bucket_label(out: &mut String, i: usize) {
        fn push_micros(out: &mut String, micros: u128) {
            use std::fmt::Write as _;
            if micros >= 1_000_000 {
                let _ = write!(out, "{:.1}s", micros as f64 / 1e6);
            } else if micros >= 1_000 {
                let _ = write!(out, "{:.0}ms", micros as f64 / 1e3);
            } else {
                let _ = write!(out, "{micros}us");
            }
        }
        if i + 1 >= LATENCY_BUCKETS {
            out.push_str(">=");
            push_micros(out, 1u128 << (LATENCY_BUCKETS - 2));
        } else {
            out.push('<');
            push_micros(out, 1u128 << i);
        }
    }

    /// Serializes the snapshot as the `/metrics` JSON document.
    pub fn to_json(&self) -> String {
        let latency = Json::Array(
            self.latency
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    Json::Object(vec![
                        ("bucket".into(), Json::str(Self::bucket_label(i))),
                        ("count".into(), Json::num(n as f64)),
                    ])
                })
                .collect(),
        );
        let routes = Json::Object(
            self.routes
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                .collect(),
        );
        Json::Object(vec![
            ("handled".into(), Json::num(self.handled as f64)),
            ("rejected".into(), Json::num(self.rejected as f64)),
            ("in_flight".into(), Json::num(self.in_flight as f64)),
            ("status_2xx".into(), Json::num(self.status_2xx as f64)),
            ("status_4xx".into(), Json::num(self.status_4xx as f64)),
            ("status_5xx".into(), Json::num(self.status_5xx as f64)),
            ("panics".into(), Json::num(self.panics as f64)),
            ("cache_hits".into(), Json::num(self.cache_hits as f64)),
            ("cache_misses".into(), Json::num(self.cache_misses as f64)),
            ("cache_hit_rate".into(), Json::num(self.cache_hit_rate())),
            (
                "latency_sum_us".into(),
                Json::num(self.latency_sum_us as f64),
            ),
            ("latency_us_log2".into(), latency),
            ("routes".into(), routes),
            (
                "phase_self_us".into(),
                Json::Object(
                    self.phase_self_us
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parses a snapshot back out of the `/metrics` JSON document
    /// ([`Self::to_json`]'s output) — how a replica router reads each
    /// shard's counters before aggregating them. Returns `None` when
    /// the document is not a metrics snapshot. The derived
    /// `cache_hit_rate` field is ignored; it is recomputed from the
    /// parsed counters.
    pub fn from_json(text: &str) -> Option<Self> {
        let doc = Json::parse(text).ok()?;
        let num =
            |key: &str| -> Option<u64> { doc.get(key).and_then(Json::as_f64).map(|v| v as u64) };
        let latency: Vec<u64> = doc
            .get("latency_us_log2")?
            .as_array()?
            .iter()
            .map(|b| b.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64)
            .collect();
        if latency.len() != LATENCY_BUCKETS {
            return None;
        }
        let pairs = |key: &str| -> Option<Vec<(String, u64)>> {
            Some(
                doc.get(key)?
                    .as_object()?
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0) as u64))
                    .collect(),
            )
        };
        Some(Self {
            handled: num("handled")?,
            rejected: num("rejected")?,
            in_flight: num("in_flight")?,
            status_2xx: num("status_2xx")?,
            status_4xx: num("status_4xx")?,
            status_5xx: num("status_5xx")?,
            panics: num("panics")?,
            cache_hits: num("cache_hits")?,
            cache_misses: num("cache_misses")?,
            latency,
            latency_sum_us: num("latency_sum_us")?,
            routes: pairs("routes")?,
            phase_self_us: pairs("phase_self_us")?,
        })
    }

    /// Adds another snapshot's counters into this one (histogram
    /// buckets bucket-wise, route and phase maps key-wise) — the
    /// aggregation a replica router applies across its shards.
    pub fn merge(&mut self, other: &Self) {
        self.handled += other.handled;
        self.rejected += other.rejected;
        self.in_flight += other.in_flight;
        self.status_2xx += other.status_2xx;
        self.status_4xx += other.status_4xx;
        self.status_5xx += other.status_5xx;
        self.panics += other.panics;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.latency_sum_us += other.latency_sum_us;
        self.latency.resize(LATENCY_BUCKETS, 0);
        for (i, n) in other.latency.iter().enumerate().take(LATENCY_BUCKETS) {
            self.latency[i] += n;
        }
        let mut routes: BTreeMap<String, u64> = self.routes.drain(..).collect();
        for (route, n) in &other.routes {
            *routes.entry(route.clone()).or_insert(0) += n;
        }
        self.routes = routes.into_iter().collect();
        let mut phases: BTreeMap<String, u64> = self.phase_self_us.drain(..).collect();
        for (phase, us) in &other.phase_self_us {
            *phases.entry(phase.clone()).or_insert(0) += us;
        }
        self.phase_self_us = phases.into_iter().collect();
    }

    /// Renders the snapshot as a human-readable text page with an ASCII
    /// latency histogram (the `/metrics?format=text` view).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("=== gables-serve metrics ===\n");
        out.push_str(&format!("handled        {}\n", self.handled));
        out.push_str(&format!("rejected (503) {}\n", self.rejected));
        out.push_str(&format!("in flight      {}\n", self.in_flight));
        out.push_str(&format!(
            "status         2xx {}  4xx {}  5xx {}\n",
            self.status_2xx, self.status_4xx, self.status_5xx
        ));
        out.push_str(&format!("caught panics  {}\n", self.panics));
        out.push_str(&format!(
            "cache          {} hits / {} misses ({:.1}% hit rate)\n",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0
        ));
        out.push_str("\nper-route handled counts:\n");
        if self.routes.is_empty() {
            out.push_str("  (none)\n");
        }
        for (route, count) in &self.routes {
            out.push_str(&format!("  {route:<12} {count}\n"));
        }
        out.push_str("\nservice latency (log2 buckets):\n");
        // Trim trailing all-zero buckets so the histogram stays compact,
        // but keep at least one row.
        let last_used = self
            .latency
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let bins: Vec<(String, u64)> = self
            .latency
            .iter()
            .take(last_used.max(1))
            .enumerate()
            .map(|(i, &n)| (Self::bucket_label(i), n))
            .collect();
        out.push_str(&gables_plot::render_histogram(&bins, 48));
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (the `/v1/metrics?format=prom` view).
    ///
    /// The log2 latency histogram becomes a native Prometheus histogram:
    /// internal bucket `i` holds requests in `[2^(i-1), 2^i) µs`, so the
    /// cumulative `le="2^i µs in seconds"` series is the prefix sum, the
    /// overflow bucket folds into `le="+Inf"`, and `_count` equals the
    /// total handled. `uptime_seconds` and `build_info` come from the
    /// caller because a snapshot has no clock or version of its own.
    pub fn to_prometheus(&self, uptime_seconds: f64, version: &str) -> String {
        let mut out = String::with_capacity(2048);
        self.to_prometheus_into(&mut out, uptime_seconds, version);
        out
    }

    /// Renders the Prometheus exposition into a caller-provided buffer
    /// without allocating: every label and value is written straight
    /// into `out` (integer and float `Display` format on the stack),
    /// so a scrape that reuses its buffer does zero heap work. The
    /// allocation budget is asserted by `tests/alloc_budget.rs`.
    pub fn to_prometheus_into(&self, out: &mut String, uptime_seconds: f64, version: &str) {
        use std::fmt::Write as _;
        let header = |out: &mut String, name: &str, kind: &str, help: &str| {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push_str("\n# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
        };
        header(
            out,
            "gables_requests_handled_total",
            "counter",
            "Requests fully processed (any status), excluding rejections.",
        );
        let _ = writeln!(out, "gables_requests_handled_total {}", self.handled);
        header(
            out,
            "gables_requests_rejected_total",
            "counter",
            "Connections refused by queue backpressure (503 at accept).",
        );
        let _ = writeln!(out, "gables_requests_rejected_total {}", self.rejected);
        header(
            out,
            "gables_requests_in_flight",
            "gauge",
            "Requests currently in service.",
        );
        let _ = writeln!(out, "gables_requests_in_flight {}", self.in_flight);
        header(
            out,
            "gables_responses_total",
            "counter",
            "Responses by status class.",
        );
        let _ = writeln!(
            out,
            "gables_responses_total{{class=\"2xx\"}} {}",
            self.status_2xx
        );
        let _ = writeln!(
            out,
            "gables_responses_total{{class=\"4xx\"}} {}",
            self.status_4xx
        );
        let _ = writeln!(
            out,
            "gables_responses_total{{class=\"5xx\"}} {}",
            self.status_5xx
        );
        header(
            out,
            "gables_handler_panics_total",
            "counter",
            "Handler panics caught and answered with a structured 500.",
        );
        let _ = writeln!(out, "gables_handler_panics_total {}", self.panics);
        header(
            out,
            "gables_cache_requests_total",
            "counter",
            "Cache-eligible requests by outcome.",
        );
        let _ = writeln!(
            out,
            "gables_cache_requests_total{{result=\"hit\"}} {}",
            self.cache_hits
        );
        let _ = writeln!(
            out,
            "gables_cache_requests_total{{result=\"miss\"}} {}",
            self.cache_misses
        );
        header(
            out,
            "gables_route_requests_total",
            "counter",
            "Handled requests by route.",
        );
        for (route, n) in &self.routes {
            out.push_str("gables_route_requests_total{route=\"");
            push_escaped_label(out, route);
            let _ = writeln!(out, "\"}} {n}");
        }
        header(
            out,
            "gables_phase_self_seconds_total",
            "counter",
            "Span self-time accumulated per phase (span name).",
        );
        for (phase, us) in &self.phase_self_us {
            out.push_str("gables_phase_self_seconds_total{phase=\"");
            push_escaped_label(out, phase);
            let _ = writeln!(out, "\"}} {}", *us as f64 / 1e6);
        }

        // Histogram: cumulative buckets in seconds, +Inf = total.
        header(
            out,
            "gables_request_latency_seconds",
            "histogram",
            "Service latency of handled requests.",
        );
        let mut cumulative = 0u64;
        for (i, count) in self.latency.iter().enumerate().take(LATENCY_BUCKETS - 1) {
            cumulative += count;
            let _ = writeln!(
                out,
                "gables_request_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                (1u64 << i) as f64 / 1e6,
            );
        }
        let total: u64 = self.latency.iter().sum();
        let _ = writeln!(
            out,
            "gables_request_latency_seconds_bucket{{le=\"+Inf\"}} {total}"
        );
        let _ = writeln!(
            out,
            "gables_request_latency_seconds_sum {}",
            self.latency_sum_us as f64 / 1e6
        );
        let _ = writeln!(out, "gables_request_latency_seconds_count {total}");

        header(
            out,
            "gables_uptime_seconds",
            "gauge",
            "Seconds since the server started.",
        );
        let _ = writeln!(
            out,
            "gables_uptime_seconds {}",
            if uptime_seconds.is_finite() {
                uptime_seconds.max(0.0)
            } else {
                0.0
            }
        );
        header(
            out,
            "gables_build_info",
            "gauge",
            "Build metadata; the value is always 1.",
        );
        out.push_str("gables_build_info{version=\"");
        push_escaped_label(out, version);
        out.push_str("\"} 1\n");
    }
}

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline must be backslash-escaped per the text exposition format.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    push_escaped_label(&mut out, value);
    out
}

/// Appends an escaped Prometheus label value into `out` — the
/// allocation-free form [`escape_label`] wraps, used on the scrape
/// path.
pub fn push_escaped_label(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handled_requests_update_every_counter_family() {
        let m = ServerMetrics::new();
        m.record_handled("/eval", 200, Duration::from_micros(3));
        m.record_handled("/eval", 400, Duration::from_micros(900));
        m.record_handled("/metrics", 200, Duration::from_millis(5));
        m.record_rejected();
        let s = m.snapshot();
        assert_eq!(s.handled, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.status_2xx, 2);
        assert_eq!(s.status_4xx, 1);
        assert_eq!(s.status_5xx, 0);
        assert_eq!(s.routes, vec![("/eval".into(), 2), ("/metrics".into(), 1)]);
        assert_eq!(s.latency.iter().sum::<u64>(), 3);
    }

    #[test]
    fn latency_buckets_are_log2_with_overflow() {
        // < 1µs lands in bucket 0, 3µs in bucket 2 (< 4µs), and an
        // absurd latency in the overflow bucket.
        assert_eq!(ServerMetrics::bucket_for(Duration::from_nanos(10)), 0);
        assert_eq!(ServerMetrics::bucket_for(Duration::from_micros(3)), 2);
        assert_eq!(
            ServerMetrics::bucket_for(Duration::from_secs(3600)),
            LATENCY_BUCKETS - 1
        );
        // Boundary: exactly 2^i µs goes to the next bucket.
        assert_eq!(ServerMetrics::bucket_for(Duration::from_micros(1)), 1);
    }

    #[test]
    fn in_flight_gauge_tracks_enter_exit() {
        let m = ServerMetrics::new();
        m.enter_in_flight();
        m.enter_in_flight();
        assert_eq!(m.snapshot().in_flight, 2);
        m.exit_in_flight();
        assert_eq!(m.snapshot().in_flight, 1);
    }

    #[test]
    fn cache_hit_rate_is_guarded_against_divide_by_zero() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot().cache_hit_rate(), 0.0);
        m.record_cache_hit();
        m.record_cache_hit();
        m.record_cache_miss();
        let rate = m.snapshot().cache_hit_rate();
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_export_parses_and_reconciles() {
        use gables_model::json::Json;
        let m = ServerMetrics::new();
        m.record_handled("/eval", 200, Duration::from_micros(10));
        m.record_cache_miss();
        let doc = Json::parse(&m.snapshot().to_json()).unwrap();
        assert_eq!(doc.get("handled").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("cache_misses").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            doc.get("routes")
                .unwrap()
                .get("/eval")
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let hist = doc.get("latency_us_log2").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), LATENCY_BUCKETS);
        let total: f64 = hist
            .iter()
            .map(|b| b.get("count").and_then(Json::as_f64).unwrap())
            .sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn text_export_contains_histogram_and_counters() {
        let m = ServerMetrics::new();
        m.record_handled("/eval", 200, Duration::from_micros(100));
        let text = m.snapshot().to_text();
        assert!(text.contains("gables-serve metrics"));
        assert!(text.contains("handled        1"));
        assert!(text.contains("/eval"));
        assert!(text.contains('#'), "histogram bar expected:\n{text}");
        assert!(text.contains("<128us"));
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let m = ServerMetrics::new();
        m.record_handled("/v1/eval", 200, Duration::from_micros(3));
        m.record_handled("/v1/eval", 200, Duration::from_micros(700));
        m.record_handled("(unmatched)", 404, Duration::from_micros(40));
        m.record_cache_hit();
        m.record_cache_miss();
        let prom = m.snapshot().to_prometheus(12.5, "0.1.0");

        // Every non-comment line is `name{labels} value`.
        for line in prom.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
        assert!(prom.contains("gables_requests_handled_total 3\n"));
        assert!(prom.contains("gables_responses_total{class=\"2xx\"} 2\n"));
        assert!(prom.contains("gables_route_requests_total{route=\"/v1/eval\"} 2\n"));
        assert!(prom.contains("gables_route_requests_total{route=\"(unmatched)\"} 1\n"));
        assert!(prom.contains("gables_cache_requests_total{result=\"hit\"} 1\n"));
        assert!(prom.contains("gables_uptime_seconds 12.5\n"));
        assert!(prom.contains("gables_build_info{version=\"0.1.0\"} 1\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf_equal_to_handled() {
        let m = ServerMetrics::new();
        m.record_handled("/a", 200, Duration::from_micros(1)); // bucket 1
        m.record_handled("/a", 200, Duration::from_micros(3)); // bucket 2
        m.record_handled("/a", 200, Duration::from_secs(3600)); // overflow
        let s = m.snapshot();
        let prom = s.to_prometheus(0.0, "test");
        let buckets: Vec<(String, u64)> = prom
            .lines()
            .filter_map(|l| l.strip_prefix("gables_request_latency_seconds_bucket{le=\""))
            .map(|rest| {
                let (le, tail) = rest.split_once("\"} ").unwrap();
                (le.to_string(), tail.parse::<u64>().unwrap())
            })
            .collect();
        assert_eq!(buckets.len(), LATENCY_BUCKETS, "one per finite le + +Inf");
        assert_eq!(buckets.last().unwrap().0, "+Inf");
        assert_eq!(buckets.last().unwrap().1, s.handled);
        for pair in buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "buckets must be monotone: {pair:?}");
        }
        // The 3600s observation is only in +Inf, not the last finite le.
        assert_eq!(buckets[LATENCY_BUCKETS - 2].1, 2);
        assert!(prom.contains(&format!(
            "gables_request_latency_seconds_count {}\n",
            s.handled
        )));
        let sum_line = prom
            .lines()
            .find(|l| l.starts_with("gables_request_latency_seconds_sum "))
            .unwrap();
        let sum: f64 = sum_line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!((sum - s.latency_sum_us as f64 / 1e6).abs() < 1e-9);
        assert!(sum > 3600.0, "the one-hour observation dominates the sum");
    }

    #[test]
    fn phase_self_time_accumulates_and_exports() {
        let m = ServerMetrics::new();
        m.record_phase_self("eval", 100.0);
        m.record_phase_self("eval", 50.4);
        m.record_phase_self("server.request", 10.0);
        m.record_phase_self("ignored", f64::NAN);
        m.record_phase_self("ignored", -5.0);
        let s = m.snapshot();
        assert_eq!(
            s.phase_self_us,
            vec![("eval".into(), 150), ("server.request".into(), 10)]
        );
        let prom = s.to_prometheus(0.0, "test");
        assert!(prom.contains("gables_phase_self_seconds_total{phase=\"eval\"} 0.00015\n"));
        assert!(prom.contains("# TYPE gables_phase_self_seconds_total counter"));
        let json = gables_model::json::Json::parse(&s.to_json()).unwrap();
        assert_eq!(
            json.get("phase_self_us")
                .unwrap()
                .get("eval")
                .and_then(gables_model::json::Json::as_f64),
            Some(150.0)
        );
        // Cardinality fence: hostile phase names fold into "(other)".
        for i in 0..(MAX_PHASE_LABELS + 10) {
            m.record_phase_self(&format!("hostile{i}"), 1.0);
        }
        let capped = m.snapshot();
        assert!(capped.phase_self_us.len() <= MAX_PHASE_LABELS + 1);
        assert!(capped.phase_self_us.iter().any(|(p, _)| p == "(other)"));
    }

    #[test]
    fn snapshot_json_round_trips_and_merges() {
        let a = ServerMetrics::new();
        a.record_handled("/v1/eval", 200, Duration::from_micros(10));
        a.record_handled("/v1/eval", 400, Duration::from_micros(100));
        a.record_cache_hit();
        a.record_phase_self("eval", 40.0);
        let b = ServerMetrics::new();
        b.record_handled("/v1/eval", 200, Duration::from_micros(20));
        b.record_handled("/v1/sweep", 200, Duration::from_micros(30));
        b.record_rejected();
        b.record_cache_miss();
        b.record_phase_self("eval", 10.0);
        b.record_phase_self("sweep", 5.0);

        // Round trip: to_json → from_json is lossless.
        let sa = a.snapshot();
        let parsed = MetricsSnapshot::from_json(&sa.to_json()).unwrap();
        assert_eq!(parsed, sa);
        assert!(MetricsSnapshot::from_json("{\"not\": \"metrics\"}").is_none());
        assert!(MetricsSnapshot::from_json("garbage").is_none());

        // Merge: every counter family is additive.
        let mut merged = sa.clone();
        merged.merge(&b.snapshot());
        assert_eq!(merged.handled, 4);
        assert_eq!(merged.rejected, 1);
        assert_eq!(merged.status_2xx, 3);
        assert_eq!(merged.status_4xx, 1);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.cache_misses, 1);
        assert_eq!(merged.latency.iter().sum::<u64>(), 4);
        assert_eq!(merged.latency_sum_us, 160);
        assert_eq!(
            merged.routes,
            vec![("/v1/eval".into(), 3), ("/v1/sweep".into(), 1)]
        );
        assert_eq!(
            merged.phase_self_us,
            vec![("eval".into(), 50), ("sweep".into(), 5)]
        );
    }

    /// A randomized snapshot drawn from a seeded SplitMix64: counters,
    /// a full histogram, and route/phase maps over a shared label pool
    /// (so two snapshots overlap on some labels and differ on others).
    fn random_label_pairs(
        rng: &mut gables_model::rng::SplitMix64,
        max: usize,
    ) -> Vec<(String, u64)> {
        const LABEL_POOL: [&str; 6] = [
            "/v1/eval",
            "/v1/sweep",
            "/v1/metrics",
            "/v1/carm",
            "(unmatched)",
            "(other)",
        ];
        let mut map = BTreeMap::new();
        for _ in 0..rng.range_usize(0, max) {
            let label = LABEL_POOL[rng.range_usize(0, LABEL_POOL.len() - 1)];
            *map.entry(label.to_string()).or_insert(0) += rng.range_u64(1, 1000);
        }
        map.into_iter().collect()
    }

    fn random_snapshot(rng: &mut gables_model::rng::SplitMix64) -> MetricsSnapshot {
        MetricsSnapshot {
            handled: rng.range_u64(0, 10_000),
            rejected: rng.range_u64(0, 100),
            in_flight: rng.range_u64(0, 8),
            status_2xx: rng.range_u64(0, 10_000),
            status_4xx: rng.range_u64(0, 1_000),
            status_5xx: rng.range_u64(0, 100),
            panics: rng.range_u64(0, 10),
            cache_hits: rng.range_u64(0, 5_000),
            cache_misses: rng.range_u64(0, 5_000),
            latency: (0..LATENCY_BUCKETS)
                .map(|_| rng.range_u64(0, 500))
                .collect(),
            latency_sum_us: rng.range_u64(0, 1 << 40),
            routes: random_label_pairs(rng, 8),
            phase_self_us: random_label_pairs(rng, 8),
        }
    }

    #[test]
    fn merge_is_commutative_and_associative_on_random_snapshots() {
        let mut rng = gables_model::rng::SplitMix64::new(0x5EED_0E7A);
        for _ in 0..64 {
            let a = random_snapshot(&mut rng);
            let b = random_snapshot(&mut rng);
            let c = random_snapshot(&mut rng);
            // Commutativity: a ⊕ b == b ⊕ a.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative");
            // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
            let mut left = ab.clone();
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge must be associative");
            // The identity: merging an all-zero snapshot changes nothing.
            let zero = MetricsSnapshot::from_json(&ServerMetrics::new().snapshot().to_json())
                .expect("zero snapshot");
            let mut with_zero = a.clone();
            with_zero.merge(&zero);
            assert_eq!(with_zero, a, "the empty snapshot is the identity");
        }
    }

    #[test]
    fn merge_adds_disjoint_and_overlapping_maps_keywise() {
        let mut a = MetricsSnapshot::from_json(&ServerMetrics::new().snapshot().to_json()).unwrap();
        a.routes = vec![("/v1/eval".into(), 3), ("/v1/sweep".into(), 5)];
        a.phase_self_us = vec![("eval".into(), 100)];
        let mut b = a.clone();
        // Overlap on /v1/eval and eval; disjoint on the rest.
        b.routes = vec![("/v1/eval".into(), 7), ("/v1/whatif".into(), 2)];
        b.phase_self_us = vec![("eval".into(), 50), ("parse".into(), 9)];
        a.merge(&b);
        assert_eq!(
            a.routes,
            vec![
                ("/v1/eval".into(), 10),
                ("/v1/sweep".into(), 5),
                ("/v1/whatif".into(), 2),
            ],
            "overlapping keys add, disjoint keys union, output stays sorted"
        );
        assert_eq!(
            a.phase_self_us,
            vec![("eval".into(), 150), ("parse".into(), 9)]
        );
    }

    #[test]
    fn merge_adds_histograms_bucket_wise_on_random_snapshots() {
        let mut rng = gables_model::rng::SplitMix64::new(0xB0C4E7);
        for _ in 0..32 {
            let a = random_snapshot(&mut rng);
            let b = random_snapshot(&mut rng);
            let mut merged = a.clone();
            merged.merge(&b);
            assert_eq!(merged.latency.len(), LATENCY_BUCKETS);
            for i in 0..LATENCY_BUCKETS {
                assert_eq!(
                    merged.latency[i],
                    a.latency[i] + b.latency[i],
                    "bucket {i} must add exactly"
                );
            }
            assert_eq!(merged.latency_sum_us, a.latency_sum_us + b.latency_sum_us);
            assert_eq!(merged.handled, a.handled + b.handled);
            assert_eq!(merged.cache_hits, a.cache_hits + b.cache_hits);
        }
    }

    #[test]
    fn prometheus_label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        let m = ServerMetrics::new();
        m.record_handled("/x\"y", 200, Duration::from_micros(1));
        let prom = m.snapshot().to_prometheus(0.0, "v\"1");
        assert!(prom.contains("gables_route_requests_total{route=\"/x\\\"y\"} 1\n"));
        assert!(prom.contains("gables_build_info{version=\"v\\\"1\"} 1\n"));
    }

    #[test]
    fn route_labels_are_bounded_against_cardinality_abuse() {
        let m = ServerMetrics::new();
        for i in 0..(MAX_ROUTE_LABELS + 50) {
            m.record_handled(&format!("/hostile/{i}"), 404, Duration::from_micros(1));
        }
        // A known route keeps counting even after the cap.
        m.record_handled("/hostile/0", 404, Duration::from_micros(1));
        let s = m.snapshot();
        assert!(s.routes.len() <= MAX_ROUTE_LABELS + 1, "{}", s.routes.len());
        let other = s.routes.iter().find(|(r, _)| r == "(other)").unwrap().1;
        assert_eq!(other, 50);
        let known = s.routes.iter().find(|(r, _)| r == "/hostile/0").unwrap().1;
        assert_eq!(known, 2);
        assert_eq!(s.handled, (MAX_ROUTE_LABELS + 51) as u64);
    }

    #[test]
    fn bucket_labels_scale_units() {
        assert_eq!(MetricsSnapshot::bucket_label(0), "<1us");
        assert_eq!(MetricsSnapshot::bucket_label(10), "<1ms");
        assert_eq!(MetricsSnapshot::bucket_label(20), "<1.0s");
        assert!(MetricsSnapshot::bucket_label(LATENCY_BUCKETS - 1).starts_with(">="));
    }
}
