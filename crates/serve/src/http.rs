//! A deliberately small HTTP/1.1 layer: enough of RFC 9112 to serve JSON
//! evaluation requests over loopback or a trusted LAN, built on `std`
//! only. Requests are parsed *incrementally* ([`parse_request_bytes`])
//! so the nonblocking event loop can feed it partial reads and
//! pipelined request streams; keep-alive is the HTTP/1.1 default and
//! honoured by [`Response::serialize`]. Explicit size limits apply to
//! the head and body, and there is no support for chunked transfer
//! encoding — clients must send `Content-Length`.

use std::io::{Read, Write};

/// Hard limit on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard limit on the request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Hard limit on the number of header fields in one request. The head
/// byte limit alone would admit thousands of tiny headers; this bounds
/// the per-request allocation count too.
pub const MAX_HEADERS: usize = 64;

/// A reading or parsing failure, mapped onto the status code the server
/// should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire were not a well-formed request (400).
    Malformed(String),
    /// The head or declared body exceeded its limit (413).
    TooLarge(String),
    /// The socket failed or timed out before a full request arrived
    /// (408 for timeouts, connection drop otherwise).
    Io(std::io::Error),
}

impl HttpError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Io(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                408
            }
            HttpError::Io(_) => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target, without the query.
    pub path: String,
    /// The raw query string (no percent-decoding), if any.
    pub query: Option<String>,
    /// Headers in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a `key=value` query parameter (no percent-decoding;
    /// the parameters this server defines are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] for invalid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|e| HttpError::Malformed(format!("body is not UTF-8: {e}")))
    }
}

/// One request parsed out of a byte buffer, with enough framing
/// information for a keep-alive event loop: how many bytes of the
/// buffer the request occupied (pipelined successors may follow) and
/// whether the client asked to keep the connection open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The request itself.
    pub request: Request,
    /// Bytes consumed from the front of the buffer (head + body).
    pub consumed: usize,
    /// Whether HTTP keep-alive semantics apply: `HTTP/1.1` unless the
    /// client sent `Connection: close`, `HTTP/1.0` only with an
    /// explicit `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a request
/// (read more and call again), `Ok(Some(parsed))` once a complete
/// request is available — `parsed.consumed` bytes belong to it; any
/// remainder is the start of the next pipelined request — and an error
/// as soon as the bytes can never become a valid request, however much
/// more arrives.
///
/// # Errors
///
/// Returns [`HttpError`] for malformed or oversized requests.
pub fn parse_request_bytes(buf: &[u8]) -> Result<Option<Parsed>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|e| HttpError::Malformed(format!("head is not UTF-8: {e}")))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} header fields"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    // Exactly zero or one Content-Length: taking the first of several
    // (or letting `usize::from_str` accept "+5") is the shape of a
    // request-smuggling bug, even though this server reads one request
    // per connection. Conflicting duplicates are rejected outright.
    let mut content_length: usize = 0;
    let mut length_seen = false;
    for (k, v) in &headers {
        if k != "content-length" {
            continue;
        }
        if length_seen {
            return Err(HttpError::Malformed(
                "duplicate Content-Length header".into(),
            ));
        }
        length_seen = true;
        if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::Malformed(format!("bad Content-Length {v:?}")));
        }
        content_length = v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?;
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "declared body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }

    // Body: exactly `Content-Length` bytes after the head terminator.
    let body_start = head_end + 4;
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return Ok(None);
    }
    let body = buf[body_start..consumed].to_vec();

    // Keep-alive: the HTTP/1.1 default, opted out of with
    // `Connection: close`; HTTP/1.0 must opt in explicitly.
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.as_str())
        .unwrap_or("");
    let wants = |token: &str| {
        connection
            .split(',')
            .any(|t| t.trim().eq_ignore_ascii_case(token))
    };
    let keep_alive = if version == "HTTP/1.0" {
        wants("keep-alive")
    } else {
        !wants("close")
    };

    Ok(Some(Parsed {
        request: Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body,
        },
        consumed,
        keep_alive,
    }))
}

/// Reads and parses one request from a stream (the blocking
/// counterpart of [`parse_request_bytes`]; leftover pipelined bytes
/// are discarded).
///
/// The caller is expected to have set read timeouts on the underlying
/// socket; a timeout surfaces as [`HttpError::Io`] with
/// `WouldBlock`/`TimedOut`.
///
/// # Errors
///
/// Returns [`HttpError`] for malformed, oversized, or interrupted
/// requests.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(parsed) = parse_request_bytes(&buf)? {
            return Ok(parsed.request);
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(closed_early(&buf));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// The error a connection earns by reaching EOF with an incomplete
/// request buffered: distinguishes a truncated head from a truncated
/// body, matching what the blocking reader always reported.
pub fn closed_early(buf: &[u8]) -> HttpError {
    if find_head_end(buf).is_none() {
        HttpError::Malformed("connection closed before a full request head arrived".into())
    } else {
        HttpError::Malformed("connection closed mid-body".into())
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response, serialized by [`Response::write_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length`, and `Connection: close`.
    pub headers: Vec<(String, String)>,
    /// The `Content-Type` value.
    pub content_type: String,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error in the v1 response envelope:
    /// `{"ok": false, "data": null, "error": {"code": ..., "message": ...}}`.
    /// The code is derived from the status via [`Response::error_code`].
    pub fn error(status: u16, message: &str) -> Self {
        Self::error_with_kind(status, None, message)
    }

    /// Like [`Response::error`], with an optional model-level `kind`
    /// field inside the error object: the closed snake_case category
    /// (`invalid_parameter`, `work_fraction_sum`, `spec_parse`, …) the
    /// application layer attributes the failure to. `None` omits the
    /// field, keeping plain transport errors byte-identical to before.
    pub fn error_with_kind(status: u16, kind: Option<&str>, message: &str) -> Self {
        use gables_model::json::Json;
        let mut fields = vec![("code".to_string(), Json::str(Self::error_code(status)))];
        if let Some(kind) = kind {
            fields.push(("kind".into(), Json::str(kind)));
        }
        fields.push(("message".into(), Json::str(message)));
        Self::json(
            status,
            Json::Object(vec![
                ("ok".into(), Json::Bool(false)),
                ("data".into(), Json::Null),
                ("error".into(), Json::Object(fields)),
            ])
            .to_string(),
        )
    }

    /// The closed transport error vocabulary: every `(status, code)`
    /// pair this server can put in an error envelope. `GET /v1`
    /// discovery and [`Response::error_code`] both read this table, so
    /// the documented set cannot drift from the served one.
    pub const ERROR_CODES: &'static [(u16, &'static str)] = &[
        (400, "bad_request"),
        (404, "not_found"),
        (405, "method_not_allowed"),
        (408, "timeout"),
        (409, "conflict"),
        (410, "endpoint_gone"),
        (413, "too_large"),
        (422, "unprocessable"),
        (500, "internal"),
        (503, "unavailable"),
    ];

    /// The stable machine-readable error code for a status — the
    /// documented set in the crate docs. Unknown statuses map to
    /// `"internal"`.
    pub fn error_code(status: u16) -> &'static str {
        Self::ERROR_CODES
            .iter()
            .find(|(s, _)| *s == status)
            .map(|(_, c)| *c)
            .unwrap_or("internal")
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Content Too Large",
            422 => "Unprocessable Content",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the whole response into one buffer, announcing
    /// `Connection: keep-alive` or `Connection: close` — the event
    /// loop's single-write path.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.serialize_into(keep_alive, &mut out);
        out
    }

    /// [`Response::serialize`] into a caller-owned buffer. The buffer is
    /// cleared, not reallocated, so a connection that recycles its write
    /// buffer serializes steady-state responses without fresh heap
    /// traffic once the buffer has grown to the working-set size.
    pub fn serialize_into(&self, keep_alive: bool, out: &mut Vec<u8>) {
        use std::io::Write as _;
        out.clear();
        // `write!` to a Vec<u8> is infallible: Vec's io::Write never errors.
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Writes the response with `Connection: close` (the blocking,
    /// one-request-per-connection path).
    ///
    /// # Errors
    ///
    /// Propagates write failures (including write timeouts).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        stream.write_all(&self.serialize(false))?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            b"POST /eval?format=text&x=1 HTTP/1.1\r\n\
              Host: localhost\r\n\
              Content-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/eval");
        assert_eq!(req.query_param("format"), Some("text"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body_str().unwrap(), "hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn body_split_across_reads_is_reassembled() {
        // Cursor always serves everything, so emulate fragmentation with
        // a reader that yields one byte at a time.
        struct OneByte(std::io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec();
        let req = read_request(&mut OneByte(std::io::Cursor::new(raw))).unwrap();
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Closed before the head completes.
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declarations() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Taking the first of two conflicting lengths is how request
        // smuggling starts; both orders must be rejected.
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde")
            .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        assert!(
            err.to_string().contains("duplicate Content-Length"),
            "{err}"
        );
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\nabcde")
            .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn content_length_must_be_plain_digits() {
        // `usize::from_str` accepts a leading '+'; the wire grammar
        // (RFC 9110 §8.6) does not.
        for bad in ["+5", "-5", "5 5", "0x5", "5,5", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let err = parse(raw.as_bytes()).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "{bad:?}: {err}");
        }
    }

    #[test]
    fn rejects_too_many_headers() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)), "{err}");
        assert_eq!(err.status(), 413);
        // Exactly at the limit still parses.
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(parse(raw.as_bytes()).is_ok());
    }

    #[test]
    fn error_with_kind_adds_the_kind_field() {
        let resp = Response::error_with_kind(400, Some("invalid_parameter"), "bpeak is nan");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            body,
            r#"{"ok":false,"data":null,"error":{"code":"bad_request","kind":"invalid_parameter","message":"bpeak is nan"}}"#
        );
        // Without a kind the envelope is unchanged.
        let resp = Response::error(400, "nope");
        let body = String::from_utf8(resp.body).unwrap();
        assert!(!body.contains("kind"), "{body}");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "hi")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn error_response_is_an_envelope_with_a_code() {
        let resp = Response::error(503, "queue full");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.content_type, "application/json");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            body,
            r#"{"ok":false,"data":null,"error":{"code":"unavailable","message":"queue full"}}"#
        );
    }

    #[test]
    fn error_codes_cover_every_served_status() {
        for (status, code) in [
            (400, "bad_request"),
            (404, "not_found"),
            (405, "method_not_allowed"),
            (408, "timeout"),
            (409, "conflict"),
            (410, "endpoint_gone"),
            (413, "too_large"),
            (422, "unprocessable"),
            (500, "internal"),
            (503, "unavailable"),
        ] {
            assert_eq!(Response::error_code(status), code);
        }
        // The lookup is driven by the same table discovery serves.
        for (status, code) in Response::ERROR_CODES {
            assert_eq!(Response::error_code(*status), *code);
        }
    }

    #[test]
    fn incremental_parse_waits_for_the_full_request() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            assert!(
                parse_request_bytes(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must not parse"
            );
        }
        let parsed = parse_request_bytes(raw).unwrap().expect("complete");
        assert_eq!(parsed.consumed, raw.len());
        assert_eq!(parsed.request.body, b"hello");
        assert!(parsed.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn pipelined_requests_report_their_consumed_length() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let first = parse_request_bytes(raw).unwrap().expect("first");
        assert_eq!(first.request.path, "/a");
        assert!(first.keep_alive);
        let rest = &raw[first.consumed..];
        let second = parse_request_bytes(rest).unwrap().expect("second");
        assert_eq!(second.request.path, "/b");
        assert_eq!(first.consumed + second.consumed, raw.len());
        assert!(!second.keep_alive, "Connection: close opts out");
    }

    #[test]
    fn keep_alive_follows_the_http_version_default() {
        let parse_ka = |raw: &[u8]| parse_request_bytes(raw).unwrap().unwrap().keep_alive;
        assert!(!parse_ka(b"GET /x HTTP/1.0\r\n\r\n"));
        assert!(parse_ka(
            b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ));
        assert!(parse_ka(b"GET /x HTTP/1.1\r\n\r\n"));
        assert!(!parse_ka(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!parse_ka(
            b"GET /x HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        ));
    }

    #[test]
    fn serialize_announces_keep_alive() {
        let bytes = Response::text(200, "hi").serialize(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn serialize_into_reuses_and_matches_serialize() {
        let resp = Response::text(200, "hi");
        let mut buf = Vec::with_capacity(256);
        resp.serialize_into(true, &mut buf);
        assert_eq!(buf, resp.serialize(true));
        // A second response reuses the same storage: the buffer is
        // cleared, not reallocated.
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        Response::text(404, "no").serialize_into(false, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 404"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn closed_early_distinguishes_head_from_body() {
        assert!(closed_early(b"GET /x HT")
            .to_string()
            .contains("before a full request head"));
        assert!(
            closed_early(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc")
                .to_string()
                .contains("mid-body")
        );
    }

    #[test]
    fn timeout_maps_to_408() {
        let err = HttpError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut));
        assert_eq!(err.status(), 408);
        let err = HttpError::Io(std::io::Error::from(std::io::ErrorKind::WouldBlock));
        assert_eq!(err.status(), 408);
    }
}
