//! Allocation-budget gate for the Prometheus scrape path.
//!
//! PR 9 established the workspace rule: steady-state hot paths do zero
//! heap allocations. A metrics scrape is a hot path too — exporters
//! poll every few seconds forever — so rendering a snapshot into a
//! reused buffer must not touch the heap once the buffer has grown to
//! size. The counting allocator is process-wide, so this test owns its
//! own integration binary and serializes measurements on a lock, same
//! as `crates/core/tests/alloc_budget.rs`.

use std::sync::Mutex;
use std::time::Duration;

use gables_model::prof::AllocScope;
use gables_serve::ServerMetrics;

/// Serializes the measuring tests: the allocation counters are global
/// to the process.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// A metrics instance with representative traffic: several routes,
/// every status class, phases, cache outcomes, and a latency spread.
fn populated_metrics() -> ServerMetrics {
    let m = ServerMetrics::new();
    for i in 0..100u64 {
        let route = match i % 4 {
            0 => "/v1/eval",
            1 => "/v1/sweep",
            2 => "/v1/metrics",
            _ => "(unmatched)",
        };
        let status = match i % 10 {
            9 => 500,
            7 | 8 => 404,
            _ => 200,
        };
        m.record_handled(route, status, Duration::from_micros(1 + i * 37));
    }
    m.record_phase_self("eval", 120.0);
    m.record_phase_self("parse", 30.0);
    m.record_cache_hit();
    m.record_cache_miss();
    m
}

#[test]
fn prometheus_scrape_into_a_reused_buffer_allocates_nothing() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let metrics = populated_metrics();
    let snapshot = metrics.snapshot();
    let mut buf = String::new();
    // Warmup: grow the buffer to steady-state size and fault in any
    // lazy formatting machinery.
    for _ in 0..8 {
        buf.clear();
        snapshot.to_prometheus_into(&mut buf, 12.5, "0.1.0");
    }
    assert!(buf.contains("gables_requests_handled_total 100\n"));
    let capacity = buf.capacity();
    let scope = AllocScope::begin();
    for _ in 0..32 {
        buf.clear();
        snapshot.to_prometheus_into(&mut buf, 12.5, "0.1.0");
        std::hint::black_box(&buf);
    }
    let delta = scope.delta();
    assert_eq!(
        delta.allocs, 0,
        "a steady-state scrape must not touch the heap: {delta:?}"
    );
    assert_eq!(delta.bytes, 0, "{delta:?}");
    assert_eq!(buf.capacity(), capacity, "the buffer never regrows");
}

#[test]
fn bucket_labels_render_without_a_fresh_string() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut buf = String::new();
    for i in 0..gables_serve::LATENCY_BUCKETS {
        buf.clear();
        gables_serve::MetricsSnapshot::push_bucket_label(&mut buf, i);
    }
    let scope = AllocScope::begin();
    for _ in 0..64 {
        for i in 0..gables_serve::LATENCY_BUCKETS {
            buf.clear();
            gables_serve::MetricsSnapshot::push_bucket_label(&mut buf, i);
            std::hint::black_box(&buf);
        }
    }
    let delta = scope.delta();
    assert_eq!(
        delta.allocs, 0,
        "bucket labels must render into the caller's buffer: {delta:?}"
    );
    // And the wrapper still agrees with the in-place form.
    buf.clear();
    gables_serve::MetricsSnapshot::push_bucket_label(&mut buf, 0);
    assert_eq!(buf, gables_serve::MetricsSnapshot::bucket_label(0));
}
