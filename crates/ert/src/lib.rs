//! # gables-ert
//!
//! An analog of the Empirical Roofline Toolkit (Lo et al., PMBS 2014) —
//! the methodology the paper's Algorithm 1 is based on — targeting the
//! `gables-soc-sim` simulator instead of physical hardware.
//!
//! The toolkit sweeps the roofline kernel over array sizes (to probe each
//! level of the memory hierarchy) and over flops-per-word (to vary
//! operational intensity), then fits an empirical roofline: the best
//! observed compute rate, the best observed DRAM bandwidth, and per-cache
//! bandwidth ceilings. This is the paper's "pessimistic estimate ... that
//! is attainable but may not be the best performance possible".
//!
//! ## Example
//!
//! ```
//! use gables_ert::{fit, sweep, SweepConfig};
//! use gables_soc_sim::{presets, Simulator};
//!
//! let sim = Simulator::new(presets::snapdragon_835_like())?;
//! let points = sweep(&sim, presets::CPU, &SweepConfig::default())?;
//! let roofline = fit(&points);
//! // Recovers the calibrated Figure 7a ceilings.
//! assert!((roofline.peak_gflops - 7.5).abs() < 0.1);
//! assert!((roofline.dram_gbps - 15.1).abs() < 0.2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;

use gables_model::baselines::roofline::{Ceiling, Roofline};
use gables_model::par::{self, Parallelism};
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_soc_sim::{
    Job, RooflineKernel, ServedFrom, SimError, Simulator, TimelineRecorder, TrafficPattern,
};

/// The sweep grid: which array sizes and flops-per-word values to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Array sizes in bytes (probing cache levels up to DRAM).
    pub array_bytes: Vec<u64>,
    /// Flops applied per word per pass (sets operational intensity).
    pub flops_per_word: Vec<u32>,
    /// Passes over the array.
    pub trials: u64,
    /// The access pattern (the paper uses read-modify-write on the CPU
    /// and a stream variant on the GPU).
    pub pattern: TrafficPattern,
}

impl SweepConfig {
    /// The paper-style CPU sweep: read-modify-write over sizes from 16 KiB
    /// to 256 MiB, intensities from 1/8 to 1024 flops/byte.
    pub fn cpu_default() -> Self {
        Self {
            array_bytes: size_grid(),
            flops_per_word: fpw_grid(),
            trials: 2,
            pattern: TrafficPattern::ReadModifyWrite,
        }
    }

    /// The paper's GPU variant: stream read one array, update another.
    pub fn gpu_default() -> Self {
        Self {
            pattern: TrafficPattern::StreamCopy,
            ..Self::cpu_default()
        }
    }

    /// The read-only sanity-check sweep (footnote 3 of the paper).
    pub fn read_only() -> Self {
        Self {
            pattern: TrafficPattern::StreamRead,
            ..Self::cpu_default()
        }
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::cpu_default()
    }
}

fn size_grid() -> Vec<u64> {
    // 16 KiB .. 256 MiB, one point per doubling.
    (14..=28).map(|p| 1u64 << p).collect()
}

fn fpw_grid() -> Vec<u32> {
    // flops/word 1..8192 per doubling => intensity 0.125..1024 for RMW f32.
    (0..=13).map(|p| 1u32 << p).collect()
}

/// One measured sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Array size in bytes.
    pub array_bytes: u64,
    /// Flops per word.
    pub flops_per_word: u32,
    /// Operational intensity, flops/byte.
    pub intensity: f64,
    /// Achieved GFLOPS/s.
    pub gflops: f64,
    /// Achieved GB/s.
    pub gbps: f64,
    /// Which memory level served the kernel.
    pub served_from: ServedFrom,
    /// Simulation epochs the measurement spanned (telemetry provenance).
    pub epochs: usize,
    /// Total arbiter progressive-filling rounds across those epochs.
    pub arbiter_rounds: u64,
}

/// Runs the full sweep of a config on one IP. Each point is measured
/// with a telemetry recorder attached so it carries provenance: how many
/// simulation epochs it spanned and how many arbiter rounds they cost.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]).
pub fn sweep(
    sim: &Simulator,
    ip: usize,
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep_with(sim, ip, config, Parallelism::Auto)
}

/// [`sweep`] with an explicit [`Parallelism`] policy. Each grid point
/// runs an independent simulation with its own recorder, so points fan
/// out across workers and come back in the serial grid order (array size
/// outermost, flops-per-word innermost) with identical bits.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]); with multiple workers the
/// reported error is the one the serial sweep would have hit first.
pub fn sweep_with(
    sim: &Simulator,
    ip: usize,
    config: &SweepConfig,
    parallelism: Parallelism,
) -> Result<Vec<SweepPoint>, SimError> {
    let nf = config.flops_per_word.len();
    let total = config.array_bytes.len() * nf;
    // Materialize the kernel grid once into a preallocated buffer.
    // `RooflineKernel` is `Copy`, so the measurement closure below is a
    // branch-free flat lookup — no per-point division chains or kernel
    // rebuilding on the hot path, and the fill loop itself is a
    // vectorizable stride over plain scalar fields.
    let mut kernels: Vec<RooflineKernel> = Vec::with_capacity(total);
    for &bytes in &config.array_bytes {
        let words = (bytes / 4).max(1);
        for &fpw in &config.flops_per_word {
            kernels.push(RooflineKernel {
                trials: config.trials,
                words,
                word_bytes: 4,
                flops_per_word: fpw,
                pattern: config.pattern,
                data_type: gables_soc_sim::kernel::DataType::Fp32,
            });
        }
    }
    par::try_map(parallelism, total, |idx| {
        let kernel = kernels[idx];
        let mut recorder = TimelineRecorder::new();
        let run = sim.run_with_recorder(&[Job { ip, kernel }], &mut recorder)?;
        let job = &run.jobs[0];
        Ok(SweepPoint {
            array_bytes: config.array_bytes[idx / nf],
            flops_per_word: kernel.flops_per_word,
            intensity: kernel.intensity(),
            gflops: job.achieved_flops_per_sec / 1e9,
            gbps: job.achieved_bytes_per_sec / 1e9,
            served_from: job.served_from.clone(),
            epochs: recorder.epochs().len(),
            arbiter_rounds: recorder.total_arbiter_rounds(),
        })
    })
}

/// An empirically fitted roofline: the best observed ceilings.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalRoofline {
    /// Best observed compute rate, GFLOPS/s.
    pub peak_gflops: f64,
    /// Best observed DRAM bandwidth, GB/s.
    pub dram_gbps: f64,
    /// Best observed bandwidth per cache level (and the scratchpad, under
    /// the key `"scratchpad"`), GB/s.
    pub cache_gbps: BTreeMap<String, f64>,
    /// The ridge point `peak / dram_bw`, flops/byte.
    pub ridge_intensity: f64,
}

impl EmpiricalRoofline {
    /// Converts the DRAM-level fit into an analytical [`Roofline`] for use
    /// with `gables-model`.
    ///
    /// # Errors
    ///
    /// Returns an error if either fitted ceiling is non-positive (an empty
    /// or degenerate sweep).
    pub fn to_roofline(&self) -> Result<Roofline, gables_model::GablesError> {
        Roofline::new(
            OpsPerSec::from_gops(self.peak_gflops),
            BytesPerSec::from_gbps(self.dram_gbps),
        )
    }

    /// The attainable GFLOPS/s this fit predicts at a given intensity —
    /// `min(peak, dram_bw · I)`.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        self.peak_gflops.min(self.dram_gbps * intensity)
    }

    /// Converts the fit into an analytical [`Roofline`] whose *roof* is
    /// the fastest observed memory level and whose *ceilings* are the
    /// slower levels (DRAM included) — the classic ERT multi-band plot.
    ///
    /// # Errors
    ///
    /// Returns an error if the fitted ceilings are non-positive (an empty
    /// or degenerate sweep).
    pub fn to_roofline_with_ceilings(&self) -> Result<Roofline, gables_model::GablesError> {
        let best_cache = self
            .cache_gbps
            .values()
            .cloned()
            .fold(self.dram_gbps, f64::max);
        let mut roofline = Roofline::new(
            OpsPerSec::from_gops(self.peak_gflops),
            BytesPerSec::from_gbps(best_cache),
        )?;
        for (level, gbps) in &self.cache_gbps {
            if *gbps < best_cache {
                roofline = roofline.with_ceiling(Ceiling::Bandwidth {
                    label: level.clone(),
                    bandwidth: BytesPerSec::from_gbps(*gbps),
                });
            }
        }
        roofline = roofline.with_ceiling(Ceiling::Bandwidth {
            label: "DRAM".into(),
            bandwidth: BytesPerSec::from_gbps(self.dram_gbps),
        });
        Ok(roofline)
    }
}

impl fmt::Display for EmpiricalRoofline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:.1} GFLOPs/sec (Maximum); DRAM - {:.1} GB/s (ridge at {:.3} flops/byte)",
            self.peak_gflops, self.dram_gbps, self.ridge_intensity
        )?;
        for (level, gbps) in &self.cache_gbps {
            writeln!(f, "  {level} - {gbps:.1} GB/s")?;
        }
        Ok(())
    }
}

/// Fits an empirical roofline from sweep points: the maximum observed
/// compute rate and, per serving level, the maximum observed bandwidth.
///
/// Degenerate input (no points) yields zeroed ceilings.
pub fn fit(points: &[SweepPoint]) -> EmpiricalRoofline {
    let mut peak_gflops = 0.0f64;
    let mut dram_gbps = 0.0f64;
    let mut cache_gbps: BTreeMap<String, f64> = BTreeMap::new();
    for p in points {
        peak_gflops = peak_gflops.max(p.gflops);
        // Probe with the borrowed label first: the level name is only
        // cloned the one time it first appears, not once per sample row.
        let label: &str = match &p.served_from {
            ServedFrom::Dram => {
                dram_gbps = dram_gbps.max(p.gbps);
                continue;
            }
            ServedFrom::Cache(name) => name.as_str(),
            ServedFrom::Scratchpad => "scratchpad",
        };
        match cache_gbps.get_mut(label) {
            Some(e) => *e = e.max(p.gbps),
            None => {
                cache_gbps.insert(label.to_string(), p.gbps);
            }
        }
    }
    EmpiricalRoofline {
        peak_gflops,
        dram_gbps,
        cache_gbps,
        ridge_intensity: if dram_gbps > 0.0 {
            peak_gflops / dram_gbps
        } else {
            f64::INFINITY
        },
    }
}

/// Convenience: sweep one IP and fit in one call.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure(
    sim: &Simulator,
    ip: usize,
    config: &SweepConfig,
) -> Result<EmpiricalRoofline, SimError> {
    Ok(fit(&sweep(sim, ip, config)?))
}

/// Formats a sweep as the classic ERT text table (one row per point),
/// for the figure-regeneration binaries.
pub fn table(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    // One buffer for the whole table: rows are formatted straight into it
    // and level labels are borrowed, so a row costs no allocations beyond
    // the buffer's own growth.
    let mut s = String::with_capacity(80 + points.len() * 72);
    s.push_str("array_bytes  flops/word  intensity(flops/B)  GFLOPS/s     GB/s  served_from\n");
    for p in points {
        let level: &str = match &p.served_from {
            ServedFrom::Dram => "DRAM",
            ServedFrom::Cache(name) => name,
            ServedFrom::Scratchpad => "scratchpad",
        };
        let _ = writeln!(
            s,
            "{:>11}  {:>10}  {:>18.4}  {:>8.2}  {:>7.2}  {}",
            p.array_bytes, p.flops_per_word, p.intensity, p.gflops, p.gbps, level
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gables_soc_sim::presets;

    fn sim() -> Simulator {
        Simulator::new(presets::snapdragon_835_like()).unwrap()
    }

    fn small_config(pattern: TrafficPattern) -> SweepConfig {
        SweepConfig {
            array_bytes: vec![64 << 10, 1 << 20, 64 << 20],
            flops_per_word: vec![1, 8, 64, 1024],
            trials: 1,
            pattern,
        }
    }

    #[test]
    fn cpu_fit_recovers_figure_7a() {
        let roofline = measure(&sim(), presets::CPU, &SweepConfig::cpu_default()).unwrap();
        assert!(
            (roofline.peak_gflops - 7.5).abs() < 0.05,
            "peak {}",
            roofline.peak_gflops
        );
        assert!(
            (roofline.dram_gbps - 15.1).abs() < 0.1,
            "dram {}",
            roofline.dram_gbps
        );
        // Caches show higher bandwidth than DRAM (Section IV-B).
        for (level, gbps) in &roofline.cache_gbps {
            assert!(*gbps > roofline.dram_gbps, "{level} not faster than DRAM");
        }
    }

    #[test]
    fn gpu_fit_recovers_figure_7b() {
        let roofline = measure(&sim(), presets::GPU, &SweepConfig::gpu_default()).unwrap();
        assert!(
            (roofline.peak_gflops - 349.6).abs() < 1.0,
            "peak {}",
            roofline.peak_gflops
        );
        assert!(
            (roofline.dram_gbps - 24.4).abs() < 0.2,
            "dram {}",
            roofline.dram_gbps
        );
    }

    #[test]
    fn dsp_fit_recovers_figure_9() {
        let roofline = measure(&sim(), presets::DSP, &SweepConfig::cpu_default()).unwrap();
        assert!(
            (roofline.peak_gflops - 3.0).abs() < 0.05,
            "peak {}",
            roofline.peak_gflops
        );
        assert!(
            (roofline.dram_gbps - 5.4).abs() < 0.1,
            "dram {}",
            roofline.dram_gbps
        );
    }

    #[test]
    fn read_only_cpu_reaches_twenty() {
        // Footnote 3: the read-only variant "achieves close to 20 GB/s".
        let roofline = measure(&sim(), presets::CPU, &SweepConfig::read_only()).unwrap();
        assert!(
            (roofline.dram_gbps - 20.0).abs() < 0.5,
            "dram {}",
            roofline.dram_gbps
        );
    }

    #[test]
    fn sweep_points_cover_the_grid() {
        let cfg = small_config(TrafficPattern::ReadModifyWrite);
        let points = sweep(&sim(), presets::CPU, &cfg).unwrap();
        assert_eq!(points.len(), 12);
        // Small arrays served from cache, large from DRAM.
        assert!(matches!(points[0].served_from, ServedFrom::Cache(_)));
        assert_eq!(points.last().unwrap().served_from, ServedFrom::Dram);
    }

    #[test]
    fn sweep_points_carry_provenance() {
        let cfg = small_config(TrafficPattern::ReadModifyWrite);
        let points = sweep(&sim(), presets::CPU, &cfg).unwrap();
        for p in &points {
            assert!(p.epochs >= 1, "{p:?}");
            // Every epoch costs at least one arbiter filling round.
            assert!(p.arbiter_rounds >= p.epochs as u64, "{p:?}");
        }
    }

    #[test]
    fn fit_on_empty_is_zeroed() {
        let r = fit(&[]);
        assert_eq!(r.peak_gflops, 0.0);
        assert_eq!(r.dram_gbps, 0.0);
        assert!(r.cache_gbps.is_empty());
        assert!(r.ridge_intensity.is_infinite());
    }

    #[test]
    fn to_roofline_round_trip() {
        let roofline = measure(
            &sim(),
            presets::CPU,
            &small_config(TrafficPattern::ReadModifyWrite),
        )
        .unwrap();
        let analytical = roofline.to_roofline().unwrap();
        assert!((analytical.peak().to_gops() - roofline.peak_gflops).abs() < 1e-9);
        // Attainable matches min(peak, bw*I) at a couple of intensities.
        for i in [0.1, 1.0, 100.0] {
            let a = roofline.attainable_gflops(i);
            let b = analytical
                .attainable(gables_model::units::OpsPerByte::new(i))
                .to_gops();
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn roofline_with_ceilings_orders_bands() {
        let fit = measure(&sim(), presets::CPU, &SweepConfig::cpu_default()).unwrap();
        let roofline = fit.to_roofline_with_ceilings().unwrap();
        // The roof is the fastest band; every ceiling sits at or below it.
        let roof_bw = roofline.bandwidth().to_gbps();
        assert!(roof_bw >= fit.dram_gbps);
        let mut saw_dram = false;
        for c in roofline.ceilings() {
            if let Ceiling::Bandwidth { label, bandwidth } = c {
                assert!(bandwidth.to_gbps() <= roof_bw + 1e-9);
                if label == "DRAM" {
                    saw_dram = true;
                    assert!((bandwidth.to_gbps() - fit.dram_gbps).abs() < 1e-9);
                }
            }
        }
        assert!(saw_dram);
    }

    #[test]
    fn attainable_tracks_measured_dram_points() {
        // Every DRAM-served measured point lies on or under the fit.
        let cfg = SweepConfig::cpu_default();
        let points = sweep(&sim(), presets::CPU, &cfg).unwrap();
        let rf = fit(&points);
        for p in points.iter().filter(|p| p.served_from == ServedFrom::Dram) {
            assert!(p.gflops <= rf.attainable_gflops(p.intensity) * (1.0 + 1e-9));
        }
    }

    #[test]
    fn table_renders_rows() {
        let cfg = small_config(TrafficPattern::StreamCopy);
        let points = sweep(&sim(), presets::GPU, &cfg).unwrap();
        let t = table(&points);
        assert!(t.lines().count() == 13);
        assert!(t.contains("DRAM"));
    }

    #[test]
    fn display_matches_figure_style() {
        let r = measure(
            &sim(),
            presets::CPU,
            &small_config(TrafficPattern::ReadModifyWrite),
        )
        .unwrap();
        let text = r.to_string();
        assert!(text.contains("GFLOPs/sec (Maximum)"));
        assert!(text.contains("DRAM"));
    }
}
