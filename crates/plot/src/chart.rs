//! Chart renderers: generic line charts plus the paper's roofline and
//! Gables multi-roofline plots.

use gables_model::baselines::roofline::Roofline;
use gables_model::units::OpsPerByte;
use gables_model::viz::GablesPlotData;

use crate::scale::{format_tick, Scale};
use crate::svg::{SvgDocument, PALETTE};

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in increasing-x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart framing: titles, axis labels, and scale kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartConfig {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-scale x-axis.
    pub x_log: bool,
    /// Log-scale y-axis.
    pub y_log: bool,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
}

impl ChartConfig {
    /// A roofline-style log-log frame.
    pub fn log_log(title: impl Into<String>, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_log: true,
            y_log: true,
            width: 640,
            height: 420,
        }
    }

    /// A linear frame.
    pub fn linear(title: impl Into<String>, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_log: false,
            y_log: false,
            width: 640,
            height: 420,
        }
    }
}

/// A dashed vertical marker with a label (the Gables "drop lines").
#[derive(Debug, Clone, PartialEq)]
pub struct VerticalMarker {
    /// X position in data coordinates.
    pub x: f64,
    /// Label drawn by the line.
    pub label: String,
}

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

fn data_bounds(series: &[Series]) -> ((f64, f64), (f64, f64)) {
    let mut xb = (f64::INFINITY, f64::NEG_INFINITY);
    let mut yb = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xb.0 = xb.0.min(x);
            xb.1 = xb.1.max(x);
            yb.0 = yb.0.min(y);
            yb.1 = yb.1.max(y);
        }
    }
    if !xb.0.is_finite() {
        xb = (0.0, 1.0);
        yb = (0.0, 1.0);
    }
    (xb, yb)
}

/// Renders a multi-series line chart to an SVG string.
pub fn render_line_chart(
    cfg: &ChartConfig,
    series: &[Series],
    markers: &[VerticalMarker],
) -> String {
    let ((x_lo, x_hi), (y_lo, y_hi)) = data_bounds(series);
    let xs = if cfg.x_log {
        Scale::log(x_lo, x_hi)
    } else {
        Scale::linear(x_lo, x_hi)
    };
    let ys = if cfg.y_log {
        Scale::log(y_lo * 0.8, y_hi * 1.25)
    } else {
        Scale::linear(0.0f64.min(y_lo), y_hi * 1.05)
    };

    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let (px_l, px_r) = (MARGIN_L, w - MARGIN_R);
    let (px_t, px_b) = (MARGIN_T, h - MARGIN_B);
    let mut doc = SvgDocument::new(cfg.width, cfg.height);

    // Frame and grid.
    doc.text(w / 2.0, 20.0, &cfg.title, 14.0, "middle", "#111");
    for t in xs.ticks() {
        let x = xs.to_pixel(t, px_l, px_r);
        doc.line(x, px_t, x, px_b, "#e0e0e0", 1.0, None);
        doc.text(x, px_b + 16.0, &format_tick(t), 10.0, "middle", "#333");
    }
    for t in ys.ticks() {
        let y = ys.to_pixel(t, px_b, px_t);
        doc.line(px_l, y, px_r, y, "#e0e0e0", 1.0, None);
        doc.text(px_l - 6.0, y + 3.0, &format_tick(t), 10.0, "end", "#333");
    }
    doc.line(px_l, px_b, px_r, px_b, "#333", 1.5, None);
    doc.line(px_l, px_t, px_l, px_b, "#333", 1.5, None);
    doc.text(w / 2.0, h - 10.0, &cfg.x_label, 12.0, "middle", "#333");
    doc.vtext(16.0, h / 2.0, &cfg.y_label, 12.0);

    // Markers.
    for m in markers {
        let x = xs.to_pixel(m.x, px_l, px_r);
        doc.line(x, px_t, x, px_b, "#888", 1.0, Some("4,3"));
        doc.text(x + 3.0, px_t + 12.0, &m.label, 10.0, "start", "#555");
    }

    // Series and legend.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|&(x, y)| (xs.to_pixel(x, px_l, px_r), ys.to_pixel(y, px_b, px_t)))
            .collect();
        doc.polyline(&pts, color, 2.0);
        let ly = px_t + 14.0 * (i as f64 + 1.0);
        doc.line(
            px_r - 110.0,
            ly - 4.0,
            px_r - 92.0,
            ly - 4.0,
            color,
            2.5,
            None,
        );
        doc.text(px_r - 88.0, ly, &s.label, 10.0, "start", "#333");
    }
    doc.finish()
}

/// Renders a classic single-chip roofline (the paper's Figures 1, 7, 9
/// style) over `[x_lo, x_hi]` flops/byte.
pub fn render_roofline(roofline: &Roofline, title: &str, x_lo: f64, x_hi: f64) -> String {
    let cfg = ChartConfig::log_log(title, "FLOPs / Byte", "GFLOPs / sec");
    let xs = gables_model::viz::log_space(x_lo, x_hi, 96);
    let points: Vec<(f64, f64)> = xs
        .iter()
        .map(|&x| (x, roofline.attainable(OpsPerByte::new(x)).to_gops()))
        .collect();
    let mut series = vec![Series {
        label: format!(
            "{:.1} GFLOPs/s, {:.1} GB/s",
            roofline.peak().to_gops(),
            roofline.bandwidth().to_gbps()
        ),
        points,
    }];
    for c in roofline.ceilings() {
        let pts = xs
            .iter()
            .map(|&x| {
                (
                    x,
                    roofline.attainable_under(c, OpsPerByte::new(x)).to_gops(),
                )
            })
            .collect();
        let label = match c {
            gables_model::baselines::roofline::Ceiling::Compute { label, .. } => label.clone(),
            gables_model::baselines::roofline::Ceiling::Bandwidth { label, .. } => label.clone(),
        };
        series.push(Series { label, points: pts });
    }
    let ridge = VerticalMarker {
        x: roofline.ridge_point().value(),
        label: "ridge".into(),
    };
    render_line_chart(&cfg, &series, &[ridge])
}

/// Renders a Gables multi-roofline plot (the paper's Figure 6 style): one
/// scaled roofline per active IP, the memory roofline, drop lines at each
/// operating intensity, and the attainable point.
pub fn render_gables_plot(data: &GablesPlotData, title: &str) -> String {
    let cfg = ChartConfig::log_log(title, "Operational intensity (ops/byte)", "Gops / sec");
    let series: Vec<Series> = data
        .curves
        .iter()
        .map(|c| Series {
            label: c.label.clone(),
            points: c.points.clone(),
        })
        .collect();
    let markers: Vec<VerticalMarker> = data
        .drop_lines
        .iter()
        .map(|d| VerticalMarker {
            x: d.intensity,
            label: d.label.clone(),
        })
        .collect();
    let mut svg = render_line_chart(&cfg, &series, &markers);
    // Mark the attainable point by appending before the closing tag.
    let ((x_lo, x_hi), (y_lo, y_hi)) = data_bounds(&series);
    let xs = Scale::log(x_lo, x_hi);
    let ys = Scale::log(y_lo * 0.8, y_hi * 1.25);
    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let px = xs.to_pixel(data.attainable.0, MARGIN_L, w - MARGIN_R);
    let py = ys.to_pixel(data.attainable.1, h - MARGIN_B, MARGIN_T);
    let marker = format!(
        r##"<circle cx="{px:.1}" cy="{py:.1}" r="5" fill="#d55e00"/><text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif" fill="#d55e00">Pattainable = {:.1} Gops/s ({})</text>"##,
        px + 8.0,
        py - 6.0,
        data.attainable.1,
        data.bottleneck,
    );
    svg.insert_str(svg.rfind("</svg>").expect("closing tag"), &marker);
    svg
}

/// Renders a cache-aware roofline (CARM): one bandwidth ceiling per
/// hierarchy level, each labelled in its own color on the sloped part of
/// the curve (where the ceilings are visually distinct — they all merge
/// into the compute roof on the right), plus the attainable curve for
/// the measured traffic profile and dashed markers at the per-level knee
/// intensities. This is the N-ceiling generalization of
/// [`render_roofline`].
pub fn render_carm(
    title: &str,
    ceilings: &[Series],
    attainable: &Series,
    knees: &[VerticalMarker],
) -> String {
    let cfg = ChartConfig::log_log(title, "Operational intensity (ops/byte)", "Gops / sec");
    let mut series: Vec<Series> = ceilings.to_vec();
    series.push(attainable.clone());
    let mut svg = render_line_chart(&cfg, &series, knees);
    // Per-ceiling labels: anchored at each curve's left end, where the
    // bandwidth slopes fan apart (strictly decreasing ladder bandwidths
    // guarantee distinct label positions).
    let ((x_lo, x_hi), (y_lo, y_hi)) = data_bounds(&series);
    let xs = Scale::log(x_lo, x_hi);
    let ys = Scale::log(y_lo * 0.8, y_hi * 1.25);
    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let mut labels = String::new();
    for (i, c) in ceilings.iter().enumerate() {
        let Some(&(x0, y0)) = c.points.first() else {
            continue;
        };
        let color = PALETTE[i % PALETTE.len()];
        let px = xs.to_pixel(x0, MARGIN_L, w - MARGIN_R) + 4.0;
        let py = ys.to_pixel(y0, h - MARGIN_B, MARGIN_T) - 5.0;
        labels.push_str(&format!(
            r##"<text x="{px:.1}" y="{py:.1}" font-size="10" font-family="sans-serif" fill="{color}">{}</text>"##,
            c.label
        ));
    }
    svg.insert_str(svg.rfind("</svg>").expect("closing tag"), &labels);
    svg
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use gables_model::rng::SplitMix64;

    fn random_series(rng: &mut SplitMix64) -> Vec<Series> {
        let n_series = rng.range_usize(0, 4);
        (0..n_series)
            .map(|i| {
                let n_pts = rng.range_usize(1, 23);
                let mut pts: Vec<(f64, f64)> = (0..n_pts)
                    .map(|_| (rng.range_f64(1.0e-6, 1.0e6), rng.range_f64(1.0e-6, 1.0e6)))
                    .collect();
                pts.sort_by(|a, b| a.0.total_cmp(&b.0));
                Series {
                    label: format!("s{i}"),
                    points: pts,
                }
            })
            .collect()
    }

    /// The renderer never panics and always emits balanced SVG,
    /// whatever the data, on all four axis combinations.
    #[test]
    fn render_is_total() {
        let mut rng = SplitMix64::new(0x5F61);
        for case in 0..64 {
            let series = random_series(&mut rng);
            let (x_log, y_log) = (case & 1 != 0, case & 2 != 0);
            let cfg = ChartConfig {
                title: "prop".into(),
                x_label: "x".into(),
                y_label: "y".into(),
                x_log,
                y_log,
                width: 320,
                height: 240,
            };
            let svg = render_line_chart(&cfg, &series, &[]);
            assert!(svg.starts_with("<svg"));
            assert!(svg.trim_end().ends_with("</svg>"));
            assert_eq!(svg.matches("<polyline").count(), series.len());
        }
    }

    /// The ASCII renderer is total as well.
    #[test]
    fn ascii_is_total() {
        let mut rng = SplitMix64::new(0xA5C1);
        for case in 0..64 {
            let series = random_series(&mut rng);
            let (x_log, y_log) = (case & 1 != 0, case & 2 != 0);
            let text = crate::ascii::render_ascii(&series, 40, 10, x_log, y_log);
            assert!(!text.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gables_model::two_ip::TwoIpModel;
    use gables_model::units::{BytesPerSec, OpsPerSec};
    use gables_model::viz::gables_plot_data;

    fn sample_series() -> Vec<Series> {
        vec![
            Series {
                label: "a".into(),
                points: vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)],
            },
            Series {
                label: "b".into(),
                points: vec![(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)],
            },
        ]
    }

    #[test]
    fn line_chart_renders_all_series_and_markers() {
        let cfg = ChartConfig::linear("test", "x", "y");
        let svg = render_line_chart(
            &cfg,
            &sample_series(),
            &[VerticalMarker {
                x: 2.0,
                label: "mid".into(),
            }],
        );
        assert!(svg.contains("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">mid<"));
        assert!(svg.contains(">test<"));
        assert!(svg.contains("dasharray"));
    }

    #[test]
    fn empty_series_still_renders_frame() {
        let cfg = ChartConfig::linear("empty", "x", "y");
        let svg = render_line_chart(&cfg, &[], &[]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn roofline_svg_contains_ceiling_and_ridge() {
        use gables_model::baselines::roofline::{Ceiling, Roofline};
        let r = Roofline::new(OpsPerSec::from_gops(7.5), BytesPerSec::from_gbps(15.1))
            .unwrap()
            .with_ceiling(Ceiling::Compute {
                label: "no SIMD".into(),
                peak: OpsPerSec::from_gops(2.0),
            });
        let svg = render_roofline(&r, "Figure 7a", 0.01, 100.0);
        assert!(svg.contains("7.5 GFLOPs/s"));
        assert!(svg.contains("no SIMD"));
        assert!(svg.contains(">ridge<"));
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn gables_plot_svg_shows_attainable_point() {
        let m = TwoIpModel::figure_6d();
        let data =
            gables_plot_data(&m.soc().unwrap(), &m.workload().unwrap(), 0.01, 100.0, 48).unwrap();
        let svg = render_gables_plot(&data, "Figure 6d");
        assert!(svg.contains("Pattainable = 160.0 Gops/s"));
        // Three rooflines drawn.
        assert_eq!(svg.matches("<polyline").count(), 3);
        // Drop lines for I0, I1, Iavg.
        assert!(svg.contains(">I0<"));
        assert!(svg.contains(">I1<"));
        assert!(svg.contains(">Iavg<"));
    }

    #[test]
    fn log_log_config() {
        let cfg = ChartConfig::log_log("t", "x", "y");
        assert!(cfg.x_log && cfg.y_log);
        let lin = ChartConfig::linear("t", "x", "y");
        assert!(!lin.x_log && !lin.y_log);
    }
}
