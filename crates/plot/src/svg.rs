//! A minimal SVG document builder — just the primitives the chart
//! renderers need (the Rust chart ecosystem is not among the approved
//! offline dependencies, so this is built in-tree).

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: u32,
    height: u32,
    body: String,
}

/// The default categorical palette (color-blind-safe Okabe–Ito subset).
pub const PALETTE: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
];

impl SvgDocument {
    /// Starts a document of the given pixel size with a white background.
    pub fn new(width: u32, height: u32) -> Self {
        let mut doc = Self {
            width,
            height,
            body: String::new(),
        };
        doc.rect(0.0, 0.0, width as f64, height as f64, "#ffffff");
        doc
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut Self {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}"/>"#
        );
        self
    }

    /// A stroked line; `dash` like `"4,3"` for dashed strokes.
    #[allow(clippy::too_many_arguments)]
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
        dash: Option<&str>,
    ) -> &mut Self {
        let dash_attr = dash
            .map(|d| format!(r#" stroke-dasharray="{d}""#))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width}"{dash_attr}/>"#
        );
        self
    }

    /// An open polyline through the points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) -> &mut Self {
        let mut attr = String::new();
        for (x, y) in points {
            let _ = write!(attr, "{x:.1},{y:.1} ");
        }
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#,
            attr.trim_end()
        );
        self
    }

    /// A filled circle marker.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) -> &mut Self {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" fill="{fill}"/>"#
        );
        self
    }

    /// A text label. `anchor` is `start`, `middle`, or `end`.
    pub fn text(
        &mut self,
        x: f64,
        y: f64,
        content: &str,
        size: f64,
        anchor: &str,
        fill: &str,
    ) -> &mut Self {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size}" font-family="sans-serif" text-anchor="{anchor}" fill="{fill}">{}</text>"#,
            escape(content)
        );
        self
    }

    /// A text label rotated 90° counter-clockwise about its anchor (for
    /// y-axis titles).
    pub fn vtext(&mut self, x: f64, y: f64, content: &str, size: f64) -> &mut Self {
        let _ = writeln!(
            self.body,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="{size}" font-family="sans-serif" text-anchor="middle" fill="#333" transform="rotate(-90 {x:.1} {y:.1})">{}</text>"##,
            escape(content)
        );
        self
    }

    /// Finalizes the document.
    pub fn finish(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_is_well_formed() {
        let mut doc = SvgDocument::new(200, 100);
        doc.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0, None)
            .polyline(&[(0.0, 0.0), (5.0, 5.0)], "#f00", 2.0)
            .circle(3.0, 3.0, 2.0, "#0f0")
            .text(1.0, 1.0, "label", 10.0, "start", "#333")
            .vtext(5.0, 50.0, "vertical", 10.0);
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("rotate(-90"));
        // Balanced element counts (every element self-closes or pairs).
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn dash_attribute_only_when_requested() {
        let mut doc = SvgDocument::new(10, 10);
        doc.line(0.0, 0.0, 1.0, 1.0, "#000", 1.0, Some("4,3"));
        assert!(doc.finish().contains("stroke-dasharray=\"4,3\""));
        let mut doc = SvgDocument::new(10, 10);
        doc.line(0.0, 0.0, 1.0, 1.0, "#000", 1.0, None);
        assert!(!doc.finish().contains("dasharray"));
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = SvgDocument::new(10, 10);
        doc.text(0.0, 0.0, "a < b & c", 8.0, "start", "#000");
        let svg = doc.finish();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn palette_has_distinct_colors() {
        use std::collections::HashSet;
        let set: HashSet<&str> = PALETTE.iter().copied().collect();
        assert_eq!(set.len(), PALETTE.len());
    }
}
