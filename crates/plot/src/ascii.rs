//! ASCII chart rendering for terminal output from the figure-regeneration
//! binaries.

use crate::chart::Series;
use crate::scale::Scale;

/// Renders series onto a character grid. Each series draws with its own
/// glyph (`*`, `+`, `o`, …); the frame carries min/max annotations.
pub fn render_ascii(
    series: &[Series],
    width: usize,
    height: usize,
    x_log: bool,
    y_log: bool,
) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let width = width.max(16);
    let height = height.max(6);

    let mut x_lo = f64::INFINITY;
    let mut x_hi = f64::NEG_INFINITY;
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
    }
    if !x_lo.is_finite() {
        return String::from("(no data)\n");
    }
    let xs = if x_log {
        Scale::log(x_lo, x_hi)
    } else {
        Scale::linear(x_lo, x_hi)
    };
    let ys = if y_log {
        Scale::log(y_lo, y_hi)
    } else {
        Scale::linear(y_lo, y_hi)
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Dense sampling along segments so lines look continuous.
        for pair in s.points.windows(2) {
            let steps = width * 2;
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let x = pair[0].0 + t * (pair[1].0 - pair[0].0);
                let y = pair[0].1 + t * (pair[1].1 - pair[0].1);
                let cx = (xs.normalize(x) * (width - 1) as f64).round() as usize;
                let cy = ((1.0 - ys.normalize(y)) * (height - 1) as f64).round() as usize;
                grid[cy.min(height - 1)][cx.min(width - 1)] = glyph;
            }
        }
        if s.points.len() == 1 {
            let (x, y) = s.points[0];
            let cx = (xs.normalize(x) * (width - 1) as f64).round() as usize;
            let cy = ((1.0 - ys.normalize(y)) * (height - 1) as f64).round() as usize;
            grid[cy.min(height - 1)][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{y_hi:>10.3} ┐\n"));
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y_lo:>10.3} └"));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "            {:<12.4}{:>width$.4}\n",
        x_lo,
        x_hi,
        width = width.saturating_sub(8)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grid_with_legend() {
        let series = vec![
            Series {
                label: "rising".into(),
                points: vec![(0.0, 0.0), (10.0, 10.0)],
            },
            Series {
                label: "flat".into(),
                points: vec![(0.0, 5.0), (10.0, 5.0)],
            },
        ];
        let text = render_ascii(&series, 40, 10, false, false);
        assert!(text.contains('*'));
        assert!(text.contains('+'));
        assert!(text.contains("rising"));
        assert!(text.contains("flat"));
        assert_eq!(text.lines().count(), 10 + 3 + 2);
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render_ascii(&[], 40, 10, false, false), "(no data)\n");
    }

    #[test]
    fn log_axes_render_roofline_knee() {
        // A roofline in log-log space: slanted then flat. The top row
        // should only be occupied on the right half.
        let points: Vec<(f64, f64)> = (0..64)
            .map(|k| {
                let x = 0.01 * (10f64).powf(k as f64 / 16.0);
                (x, (15.1 * x).min(7.5))
            })
            .collect();
        let series = vec![Series {
            label: "cpu".into(),
            points,
        }];
        let text = render_ascii(&series, 60, 12, true, true);
        let first_grid_line = text.lines().nth(1).unwrap();
        let stars_left = first_grid_line
            .chars()
            .take(30)
            .filter(|&c| c == '*')
            .count();
        let stars_right = first_grid_line
            .chars()
            .skip(30)
            .filter(|&c| c == '*')
            .count();
        assert!(stars_right > 0, "flat roof missing:\n{text}");
        assert_eq!(stars_left, 0, "roof should not extend left:\n{text}");
    }

    #[test]
    fn single_point_series() {
        let series = vec![Series {
            label: "dot".into(),
            points: vec![(1.0, 1.0)],
        }];
        let text = render_ascii(&series, 20, 8, false, false);
        assert!(text.contains('*'));
    }
}
