//! ASCII rendering of observability span trees.
//!
//! Takes the flat [`SpanRecord`] list a
//! [`SpanCollector`](gables_model::obs::SpanCollector) produces for one
//! trace and renders it as an indented tree with durations, plus a
//! compact one-line summary for flight-recorder listings.

use gables_model::obs::SpanRecord;

/// One node of the reconstructed span tree: the record's index plus the
/// indices of its children, ordered by start time.
struct Node {
    record: usize,
    children: Vec<usize>,
}

/// Rebuilds parent/child structure from flat records. Roots are spans
/// whose parent is 0 or absent (dropped by a bounded collector); both
/// roots and children are ordered by start time so rendering is stable.
fn build_tree(spans: &[SpanRecord]) -> (Vec<Node>, Vec<usize>) {
    let mut nodes: Vec<Node> = (0..spans.len())
        .map(|i| Node {
            record: i,
            children: Vec::new(),
        })
        .collect();
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        let parent = spans
            .iter()
            .position(|p| p.span_id == span.parent_id && p.span_id != span.span_id);
        match (span.parent_id, parent) {
            (0, _) | (_, None) => roots.push(i),
            (_, Some(p)) => nodes[p].children.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        spans[*a]
            .start_us
            .partial_cmp(&spans[*b].start_us)
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    roots.sort_by(by_start);
    for node in &mut nodes {
        node.children.sort_by(by_start);
    }
    (nodes, roots)
}

/// Renders a trace's spans as an indented ASCII tree, one span per line:
///
/// ```text
/// server.request                             1523.4us
///   dispatch /v1/sweep                       1401.0us
///     sweep                                  1350.1us
///       worker                                700.0us
/// ```
///
/// Spans whose parent was dropped by a bounded collector surface as
/// extra roots rather than disappearing. Returns `"(no spans)\n"` for an
/// empty trace.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    if spans.is_empty() {
        return "(no spans)\n".to_string();
    }
    let (nodes, roots) = build_tree(spans);
    let name_width = spans
        .iter()
        .map(|s| s.name.chars().count())
        .max()
        .unwrap_or(0)
        // Deepest indent must still fit before the duration column.
        + 2 * depth(&nodes, &roots);
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 0)).collect();
    while let Some((idx, level)) = stack.pop() {
        let span = &spans[nodes[idx].record];
        let label = format!("{}{}", "  ".repeat(level), span.name);
        out.push_str(&format!(
            "{label:<width$} {dur:>10.1}us\n",
            width = name_width.max(label.chars().count()),
            dur = span.dur_us,
        ));
        for &child in nodes[idx].children.iter().rev() {
            stack.push((child, level + 1));
        }
    }
    out
}

fn depth(nodes: &[Node], roots: &[usize]) -> usize {
    fn walk(nodes: &[Node], idx: usize, level: usize) -> usize {
        nodes[idx]
            .children
            .iter()
            .map(|&c| walk(nodes, c, level + 1))
            .max()
            .unwrap_or(level)
    }
    roots.iter().map(|&r| walk(nodes, r, 0)).max().unwrap_or(0)
}

/// Compresses a trace into a single line for list views: the chain of
/// first children, with repeated sibling names collapsed to `×count`:
///
/// ```text
/// server.request > dispatch /v1/sweep > sweep > worker ×4
/// ```
pub fn span_tree_summary(spans: &[SpanRecord]) -> String {
    if spans.is_empty() {
        return "(no spans)".to_string();
    }
    let (nodes, roots) = build_tree(spans);
    let mut parts: Vec<String> = Vec::new();
    let mut current = roots.first().copied();
    while let Some(idx) = current {
        let node = &nodes[idx];
        let name = spans[node.record].name.as_str();
        // Collapse siblings sharing the first child's name into ×count.
        parts.push(name.to_string());
        current = node.children.first().copied();
        if let Some(child) = current {
            let child_name = &spans[nodes[child].record].name;
            let same = node
                .children
                .iter()
                .filter(|&&c| spans[nodes[c].record].name == *child_name)
                .count();
            if same > 1 {
                parts.push(format!("{child_name} ×{same}"));
                current = None;
            }
        }
    }
    parts.join(" > ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gables_model::obs::{attach_root, hash64, span, span_at, SpanCollector};

    fn sample_trace() -> Vec<SpanRecord> {
        let collector = SpanCollector::new(32);
        {
            let _root = attach_root(&collector, hash64("t"), "server.request");
            let _dispatch = span("dispatch /v1/sweep");
            let _handler = span("sweep");
            let ctx = gables_model::obs::current_context().unwrap();
            for i in 0..3 {
                let _w = span_at(&ctx, "worker", i);
            }
        }
        collector.take().0
    }

    #[test]
    fn tree_renders_every_span_with_nesting() {
        let spans = sample_trace();
        let tree = render_span_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), spans.len());
        assert!(lines[0].starts_with("server.request"));
        assert!(lines[1].starts_with("  dispatch /v1/sweep"));
        assert!(lines[2].starts_with("    sweep"));
        assert!(lines[3].starts_with("      worker"));
        assert!(tree.contains("us\n"));
    }

    #[test]
    fn summary_collapses_repeated_workers() {
        let spans = sample_trace();
        assert_eq!(
            span_tree_summary(&spans),
            "server.request > dispatch /v1/sweep > sweep > worker ×3"
        );
        assert_eq!(span_tree_summary(&[]), "(no spans)");
    }

    #[test]
    fn orphaned_spans_surface_as_roots() {
        let mut spans = sample_trace();
        // Simulate the root being dropped by a bounded collector.
        let root_id = spans.iter().find(|s| s.parent_id == 0).unwrap().span_id;
        spans.retain(|s| s.span_id != root_id);
        let tree = render_span_tree(&spans);
        assert!(tree.starts_with("dispatch /v1/sweep"));
        assert_eq!(tree.lines().count(), spans.len());
    }
}
