//! Axis scales: linear and logarithmic data→pixel mappings.

/// An axis scale mapping a data interval onto a pixel interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Linear interpolation.
    Linear {
        /// Data minimum.
        lo: f64,
        /// Data maximum.
        hi: f64,
    },
    /// Base-10 logarithmic interpolation (requires positive data).
    Log {
        /// Data minimum (> 0).
        lo: f64,
        /// Data maximum (> lo).
        hi: f64,
    },
}

impl Scale {
    /// Creates a linear scale; degenerate ranges are widened slightly so
    /// mapping stays total.
    pub fn linear(lo: f64, hi: f64) -> Self {
        if hi > lo {
            Scale::Linear { lo, hi }
        } else {
            Scale::Linear {
                lo: lo - 0.5,
                hi: lo + 0.5,
            }
        }
    }

    /// Creates a log scale, clamping non-positive bounds to a tiny
    /// positive value.
    pub fn log(lo: f64, hi: f64) -> Self {
        let lo = lo.max(1e-12);
        let hi = hi.max(lo * 10.0);
        Scale::Log { lo, hi }
    }

    /// Maps `x` to a normalized position in `[0, 1]` (clamped).
    pub fn normalize(&self, x: f64) -> f64 {
        let t = match *self {
            Scale::Linear { lo, hi } => (x - lo) / (hi - lo),
            Scale::Log { lo, hi } => (x.max(1e-300) / lo).ln() / (hi / lo).ln(),
        };
        t.clamp(0.0, 1.0)
    }

    /// Maps `x` into pixel space `[a, b]` (b may be less than a for an
    /// inverted y-axis).
    pub fn to_pixel(&self, x: f64, a: f64, b: f64) -> f64 {
        a + self.normalize(x) * (b - a)
    }

    /// Tick positions: decade ticks for log scales, ~6 round steps for
    /// linear scales.
    pub fn ticks(&self) -> Vec<f64> {
        match *self {
            Scale::Log { lo, hi } => {
                let first = lo.log10().ceil() as i32;
                let last = hi.log10().floor() as i32;
                (first..=last).map(|e| 10f64.powi(e)).collect()
            }
            Scale::Linear { lo, hi } => {
                let span = hi - lo;
                let raw = span / 6.0;
                let mag = 10f64.powf(raw.log10().floor());
                let step = [1.0, 2.0, 5.0, 10.0]
                    .iter()
                    .map(|m| m * mag)
                    .find(|s| span / s <= 7.0)
                    .unwrap_or(mag * 10.0);
                let mut t = (lo / step).ceil() * step;
                let mut out = Vec::new();
                while t <= hi + step * 1e-9 {
                    out.push(t);
                    t += step;
                }
                out
            }
        }
    }

    /// The data bounds.
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            Scale::Linear { lo, hi } | Scale::Log { lo, hi } => (lo, hi),
        }
    }
}

/// Formats a tick value compactly (decades as 0.01/0.1/1/10/…, others with
/// minimal digits).
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (1e-3..1e6).contains(&a) {
        if (v - v.round()).abs() < 1e-9 * a.max(1.0) {
            format!("{}", v.round() as i64)
        } else {
            format!("{v}")
        }
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_maps_endpoints() {
        let s = Scale::linear(0.0, 10.0);
        assert_eq!(s.normalize(0.0), 0.0);
        assert_eq!(s.normalize(10.0), 1.0);
        assert_eq!(s.normalize(5.0), 0.5);
        assert_eq!(s.to_pixel(5.0, 0.0, 100.0), 50.0);
        // Inverted (y-axis) mapping.
        assert_eq!(s.to_pixel(0.0, 100.0, 0.0), 100.0);
    }

    #[test]
    fn log_maps_decades_evenly() {
        let s = Scale::log(0.01, 100.0);
        assert!((s.normalize(0.01)).abs() < 1e-12);
        assert!((s.normalize(100.0) - 1.0).abs() < 1e-12);
        assert!((s.normalize(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_clamps_out_of_range() {
        let s = Scale::linear(0.0, 1.0);
        assert_eq!(s.normalize(-5.0), 0.0);
        assert_eq!(s.normalize(5.0), 1.0);
        let l = Scale::log(1.0, 10.0);
        assert_eq!(l.normalize(0.0), 0.0);
    }

    #[test]
    fn log_ticks_are_decades() {
        let s = Scale::log(0.01, 100.0);
        assert_eq!(s.ticks(), vec![0.01, 0.1, 1.0, 10.0, 100.0]);
    }

    #[test]
    fn linear_ticks_are_round_and_bounded() {
        let s = Scale::linear(0.0, 1.0);
        let ticks = s.ticks();
        assert!(ticks.len() >= 3 && ticks.len() <= 8, "{ticks:?}");
        for t in &ticks {
            assert!(*t >= 0.0 && *t <= 1.0 + 1e-9);
        }
        let s = Scale::linear(2007.0, 2017.0);
        assert!(s.ticks().iter().all(|t| t.fract().abs() < 1e-9));
    }

    #[test]
    fn degenerate_ranges_are_widened() {
        let s = Scale::linear(3.0, 3.0);
        let (lo, hi) = s.bounds();
        assert!(hi > lo);
        let l = Scale::log(-1.0, -0.5);
        let (lo, hi) = l.bounds();
        assert!(lo > 0.0 && hi > lo);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(10.0), "10");
        assert_eq!(format_tick(0.1), "0.1");
        assert_eq!(format_tick(1e9), "1e9");
    }
}
