//! ASCII Gantt-style timeline rendering for simulator telemetry.
//!
//! The simulator's `TimelineRecorder` (in `gables-soc-sim`) captures
//! per-epoch flow activity; this module renders such data as a terminal
//! timeline — one row per track (typically one per IP), each span drawn
//! with its own glyph (the telemetry layer uses the binding-constraint
//! glyph, so the row reads as a bottleneck ribbon) — plus shaded
//! utilization ribbons for scalar signals like DRAM occupancy. The types
//! here are plain numbers and labels, so the renderer stays independent
//! of the simulator crates.

/// A labelled interval on a timeline row.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSpan {
    /// Span start time (seconds, or any consistent unit).
    pub t_start: f64,
    /// Span end time.
    pub t_end: f64,
    /// Glyph drawn over the span's cells.
    pub glyph: char,
}

/// One row of a timeline: a track label plus its spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Track label (e.g. an IP name).
    pub label: String,
    /// Spans to draw; later spans overwrite earlier ones where they
    /// overlap.
    pub spans: Vec<TimelineSpan>,
}

/// Shade glyphs from empty to full, used by [`utilization_row`].
const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];

/// Converts a piecewise-constant scalar signal in `[0, 1]` (e.g. DRAM
/// utilization per epoch) into a shaded [`TimelineRow`]: each
/// `(t_start, t_end, value)` sample maps to a glyph from a ramp of eight
/// shades. Values are clamped to `[0, 1]`; NaN renders as empty.
pub fn utilization_row(label: impl Into<String>, samples: &[(f64, f64, f64)]) -> TimelineRow {
    let spans = samples
        .iter()
        .map(|&(t_start, t_end, value)| {
            let v = if value.is_nan() {
                0.0
            } else {
                value.clamp(0.0, 1.0)
            };
            let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
            TimelineSpan {
                t_start,
                t_end,
                glyph: SHADES[idx.min(SHADES.len() - 1)],
            }
        })
        .collect();
    TimelineRow {
        label: label.into(),
        spans,
    }
}

/// Renders rows onto a shared time axis, `width` cells wide. Each cell
/// shows the glyph of the last span covering the cell's center time.
/// Returns `"(no data)\n"` when no row has a positive-length span.
pub fn render_timeline(rows: &[TimelineRow], width: usize) -> String {
    let width = width.max(16);
    let mut t_lo = f64::INFINITY;
    let mut t_hi = f64::NEG_INFINITY;
    for row in rows {
        for s in &row.spans {
            if s.t_end > s.t_start {
                t_lo = t_lo.min(s.t_start);
                t_hi = t_hi.max(s.t_end);
            }
        }
    }
    if !t_lo.is_finite() || t_hi <= t_lo {
        return String::from("(no data)\n");
    }
    let span = t_hi - t_lo;
    let label_width = rows
        .iter()
        .map(|r| r.label.chars().count())
        .max()
        .unwrap_or(0)
        .max(4);

    let mut out = String::new();
    for row in rows {
        let mut cells = vec![' '; width];
        for (c, cell) in cells.iter_mut().enumerate() {
            let t = t_lo + (c as f64 + 0.5) / width as f64 * span;
            for s in &row.spans {
                if s.t_start <= t && t < s.t_end {
                    *cell = s.glyph;
                }
            }
        }
        out.push_str(&format!("{:>label_width$} │", row.label));
        out.extend(cells.iter());
        out.push_str("│\n");
    }
    out.push_str(&format!("{:>label_width$} └", ""));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    let t_label = format!("{t_lo:.6}");
    out.push_str(&format!(
        "{:>label_width$}  {:<half$}{:>half$}\n",
        "s",
        t_label,
        format!("{t_hi:.6}"),
        half = width / 2,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_on_a_shared_axis() {
        let rows = vec![
            TimelineRow {
                label: "CPU".into(),
                spans: vec![
                    TimelineSpan {
                        t_start: 0.0,
                        t_end: 0.5,
                        glyph: 'D',
                    },
                    TimelineSpan {
                        t_start: 0.5,
                        t_end: 1.0,
                        glyph: 'C',
                    },
                ],
            },
            TimelineRow {
                label: "GPU".into(),
                spans: vec![TimelineSpan {
                    t_start: 0.0,
                    t_end: 0.25,
                    glyph: 'P',
                }],
            },
        ];
        let text = render_timeline(&rows, 40);
        assert!(text.contains("CPU"));
        assert!(text.contains("GPU"));
        // CPU's two halves and GPU's quarter all show up.
        assert!(text.contains('D'));
        assert!(text.contains('C'));
        assert!(text.contains('P'));
        // The GPU row goes quiet after its span ends: the last cells of
        // its line are blank.
        let gpu_line = text.lines().find(|l| l.contains("GPU")).unwrap();
        assert!(gpu_line.trim_end().ends_with([' ', '│']));
    }

    #[test]
    fn later_spans_overwrite_earlier() {
        let rows = vec![TimelineRow {
            label: "x".into(),
            spans: vec![
                TimelineSpan {
                    t_start: 0.0,
                    t_end: 1.0,
                    glyph: 'a',
                },
                TimelineSpan {
                    t_start: 0.0,
                    t_end: 1.0,
                    glyph: 'b',
                },
            ],
        }];
        let text = render_timeline(&rows, 20);
        assert!(!text.contains('a'));
        assert!(text.contains('b'));
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render_timeline(&[], 40), "(no data)\n");
        // A row whose spans all have zero length has no drawable extent.
        let degenerate = vec![TimelineRow {
            label: "z".into(),
            spans: vec![TimelineSpan {
                t_start: 1.0,
                t_end: 1.0,
                glyph: '#',
            }],
        }];
        assert_eq!(render_timeline(&degenerate, 40), "(no data)\n");
    }

    #[test]
    fn utilization_shades_scale_with_value() {
        let row = utilization_row(
            "DRAM",
            &[
                (0.0, 1.0, 0.0),
                (1.0, 2.0, 0.5),
                (2.0, 3.0, 1.0),
                (3.0, 4.0, f64::NAN),
            ],
        );
        assert_eq!(row.spans[0].glyph, ' ');
        assert_eq!(row.spans[2].glyph, '@');
        assert_eq!(row.spans[3].glyph, ' ');
        // Mid value lands strictly between the extremes on the ramp.
        let mid = SHADES
            .iter()
            .position(|&c| c == row.spans[1].glyph)
            .unwrap();
        assert!(mid > 0 && mid < SHADES.len() - 1);
        let text = render_timeline(&[row], 30);
        assert!(text.contains('@'));
    }
}
