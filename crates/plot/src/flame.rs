//! ASCII renderers for folded-stack profiles: a sideways flame tree and
//! a top-N self-time table. Input is the `(stack, count)` pairs a
//! [`gables_model::prof::Profile`] aggregates (stacks are
//! semicolon-joined frame paths, root first), so the same data feeds
//! `flamegraph.pl` and a terminal.

use std::collections::BTreeMap;

/// One node of the reconstructed stack tree.
#[derive(Debug, Default)]
struct Node {
    /// Samples whose path passes through (or ends at) this frame.
    total: u64,
    /// Samples whose path ends exactly at this frame.
    this: u64,
    children: BTreeMap<String, Node>,
}

fn build_tree(stacks: &[(String, u64)]) -> Node {
    let mut root = Node::default();
    for (path, count) in stacks {
        root.total += count;
        let mut node = &mut root;
        for frame in path.split(';').filter(|f| !f.is_empty()) {
            node = node.children.entry(frame.to_string()).or_default();
            node.total += count;
        }
        node.this += count;
    }
    root
}

fn render_node(
    node: &Node,
    name: &str,
    depth: usize,
    grand_total: u64,
    width: usize,
    out: &mut String,
) {
    let frac = if grand_total == 0 {
        0.0
    } else {
        node.total as f64 / grand_total as f64
    };
    let bar_len = ((frac * width as f64).round() as usize).clamp(1, width);
    let indent = "  ".repeat(depth);
    out.push_str(&format!(
        "{indent}{name} {bar} {pct:5.1}% ({count})\n",
        bar = "█".repeat(bar_len),
        pct = frac * 100.0,
        count = node.total,
    ));
    for (child_name, child) in &node.children {
        render_node(child, child_name, depth + 1, grand_total, width, out);
    }
}

/// Renders folded stacks as an indented ASCII flame tree: one line per
/// frame, bar length proportional to the fraction of all samples that
/// pass through it, children indented under parents in deterministic
/// (lexicographic) order. `width` is the bar width of a 100% frame.
pub fn render_flame(stacks: &[(String, u64)], width: usize) -> String {
    let width = width.clamp(4, 200);
    let root = build_tree(stacks);
    if root.total == 0 {
        return "(no samples)\n".to_string();
    }
    let mut out = String::new();
    for (name, node) in &root.children {
        render_node(node, name, 0, root.total, width, &mut out);
    }
    out
}

/// Renders the top-`n` frames by *self* samples (samples whose stack
/// ends at the frame) as a fixed-width table with self%, self count,
/// total count (samples passing through), and the frame name. Ties
/// break by name for deterministic output.
pub fn render_self_time_table(stacks: &[(String, u64)], n: usize) -> String {
    let mut self_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut total_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut grand_total: u64 = 0;
    for (path, count) in stacks {
        grand_total += count;
        let mut last = None;
        for frame in path.split(';').filter(|f| !f.is_empty()) {
            *total_counts.entry(frame).or_default() += count;
            last = Some(frame);
        }
        if let Some(leaf) = last {
            *self_counts.entry(leaf).or_default() += count;
        }
    }
    if grand_total == 0 {
        return "(no samples)\n".to_string();
    }
    let mut rows: Vec<(&str, u64, u64)> = total_counts
        .iter()
        .map(|(frame, total)| (*frame, self_counts.get(frame).copied().unwrap_or(0), *total))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let mut out = String::from(" self%    self   total  frame\n");
    for (frame, this, total) in rows.into_iter().take(n.max(1)) {
        out.push_str(&format!(
            "{pct:5.1}%  {this:6}  {total:6}  {frame}\n",
            pct = this as f64 / grand_total as f64 * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks() -> Vec<(String, u64)> {
        vec![
            ("main".to_string(), 2),
            ("main;dispatch".to_string(), 3),
            ("main;dispatch;sweep".to_string(), 5),
            ("main;dispatch;sweep;worker".to_string(), 90),
        ]
    }

    #[test]
    fn flame_tree_nests_and_scales_bars() {
        let out = render_flame(&stacks(), 40);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("main "), "root first: {out}");
        assert!(lines[1].starts_with("  dispatch "), "child indented: {out}");
        assert!(lines[2].starts_with("    sweep "));
        assert!(lines[3].starts_with("      worker "));
        assert!(lines[0].contains("100.0% (100)"));
        assert!(lines[3].contains("90.0% (90)"));
        // Bars narrow monotonically down the spine: totals are
        // inclusive of descendants (main 100 ≥ dispatch 98 ≥ worker 90).
        let bar = |l: &str| l.chars().filter(|c| *c == '█').count();
        assert!(bar(lines[0]) >= bar(lines[1]));
        assert!(bar(lines[1]) >= bar(lines[3]));
        assert!(lines[1].contains("(98)"));
    }

    #[test]
    fn flame_handles_empty_input() {
        assert_eq!(render_flame(&[], 40), "(no samples)\n");
        assert_eq!(render_self_time_table(&[], 5), "(no samples)\n");
    }

    #[test]
    fn self_time_table_ranks_leaves_first() {
        let out = render_self_time_table(&stacks(), 3);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "header + top 3: {out}");
        assert!(lines[1].ends_with("worker"), "worker has most self: {out}");
        assert!(lines[1].contains("90.0%"));
        assert!(lines[2].ends_with("sweep"));
        // `main` appears in every stack: total 100, self 2.
        let main_row = render_self_time_table(&stacks(), 10);
        assert!(
            main_row.lines().any(|l| l.contains("   100  main")),
            "{main_row}"
        );
    }
}
