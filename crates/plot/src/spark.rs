//! Terminal sparklines and gauges for the `gables top` live dashboard.
//!
//! A sparkline compresses a short history of samples (one per poll
//! tick) into a fixed-width strip of block glyphs; a gauge renders a
//! single fraction as a bracketed bar. Both are pure text — no ANSI
//! colour — so frames diff cleanly in tests and paste into docs.

/// The eight block glyphs, shortest to tallest.
const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders the last `width` samples as a sparkline, scaled to the
/// min..max of the *rendered* window so the shape stays readable as
/// the series drifts. Missing history (fewer samples than `width`)
/// left-pads with spaces; a flat or empty series renders the lowest
/// tick for every present sample.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let shown = &values[values.len().saturating_sub(width)..];
    let mut out = String::with_capacity(width * 3);
    for _ in shown.len()..width {
        out.push(' ');
    }
    let finite = shown.iter().copied().filter(|v| v.is_finite());
    let lo = finite.clone().fold(f64::INFINITY, f64::min);
    let hi = finite.fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    for &v in shown {
        if !v.is_finite() {
            out.push(' ');
            continue;
        }
        let level = if span > 0.0 {
            (((v - lo) / span) * (TICKS.len() - 1) as f64).round() as usize
        } else {
            0
        };
        out.push(TICKS[level.min(TICKS.len() - 1)]);
    }
    out
}

/// Renders a fraction as a `[####......]` gauge of `width` cells.
/// Fractions above 1 fill the bar and flag the overflow with a `!`
/// (the burn-rate case: past 1.0 the budget is burning), negatives and
/// NaN clamp to empty.
pub fn gauge(fraction: f64, width: usize) -> String {
    let width = width.max(1);
    let clamped = if fraction.is_finite() {
        fraction.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (clamped * width as f64).round() as usize;
    let mut out = String::with_capacity(width + 3);
    out.push('[');
    for i in 0..width {
        out.push(if i < filled { '#' } else { '.' });
    }
    out.push(']');
    if fraction.is_finite() && fraction > 1.0 {
        out.push('!');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_the_rendered_window() {
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
        // Only the last `width` samples matter for the scale.
        let line = sparkline(&[1000.0, 0.0, 7.0], 2);
        assert_eq!(line.chars().count(), 2);
        assert_eq!(line, "▁█");
    }

    #[test]
    fn sparkline_pads_missing_history_and_handles_flat_series() {
        let line = sparkline(&[5.0, 5.0], 6);
        assert_eq!(line, "    ▁▁");
        assert_eq!(sparkline(&[], 4), "    ");
        // Non-finite samples render as gaps, not panics.
        let line = sparkline(&[1.0, f64::NAN, 2.0], 3);
        assert_eq!(line.chars().count(), 3);
        assert_eq!(line.chars().nth(1), Some(' '));
    }

    #[test]
    fn gauge_fills_clamps_and_flags_overflow() {
        assert_eq!(gauge(0.0, 10), "[..........]");
        assert_eq!(gauge(0.5, 10), "[#####.....]");
        assert_eq!(gauge(1.0, 10), "[##########]");
        assert_eq!(gauge(3.7, 10), "[##########]!");
        assert_eq!(gauge(-2.0, 4), "[....]");
        assert_eq!(gauge(f64::NAN, 4), "[....]");
    }
}
