//! # gables-plot
//!
//! SVG and ASCII renderers for the paper's plots: classic rooflines
//! (Figures 1, 7, 9), Gables scaled multi-rooflines with drop lines
//! (Figure 6), generic line charts (Figures 2 and 8), and an ASCII
//! Gantt/utilization timeline for simulator telemetry ([`gantt`]). Built
//! in-tree because no chart crate is among the approved offline
//! dependencies.
//!
//! ## Example
//!
//! ```
//! use gables_model::two_ip::TwoIpModel;
//! use gables_model::viz::gables_plot_data;
//! use gables_plot::render_gables_plot;
//!
//! let m = TwoIpModel::figure_6d();
//! let data = gables_plot_data(&m.soc()?, &m.workload()?, 0.01, 100.0, 64)?;
//! let svg = render_gables_plot(&data, "Figure 6d");
//! assert!(svg.contains("</svg>"));
//! # Ok::<(), gables_model::GablesError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ascii;
pub mod chart;
pub mod flame;
pub mod gantt;
pub mod hist;
pub mod scale;
pub mod span_tree;
pub mod spark;
pub mod svg;

pub use ascii::render_ascii;
pub use chart::{
    render_carm, render_gables_plot, render_line_chart, render_roofline, ChartConfig, Series,
    VerticalMarker,
};
pub use flame::{render_flame, render_self_time_table};
pub use gantt::{render_timeline, utilization_row, TimelineRow, TimelineSpan};
pub use hist::render_histogram;
pub use span_tree::{render_span_tree, span_tree_summary};
pub use spark::{gauge, sparkline};
pub use svg::SvgDocument;
