//! ASCII horizontal histogram rendering — used by `gables-serve`'s
//! `/metrics?format=text` latency view, and generic enough for any
//! labelled count distribution.

/// Renders labelled counts as a horizontal bar chart. Bars scale to the
/// largest count across `bar_width` columns; each row shows the label,
/// the bar, and the raw count. Rows with a zero count render an empty
/// bar (they are kept so bucket boundaries stay visible). Returns
/// `"(no data)\n"` when every count is zero or `bins` is empty.
///
/// ```
/// let out = gables_plot::render_histogram(
///     &[("<1ms".to_string(), 3), ("<2ms".to_string(), 9)],
///     20,
/// );
/// assert!(out.contains("<2ms"));
/// assert!(out.contains("9"));
/// ```
pub fn render_histogram(bins: &[(String, u64)], bar_width: usize) -> String {
    let bar_width = bar_width.clamp(8, 200);
    let max = bins.iter().map(|(_, n)| *n).max().unwrap_or(0);
    if max == 0 {
        return String::from("(no data)\n");
    }
    let label_width = bins.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, count) in bins {
        // Round up so any non-zero count paints at least one column.
        let cols = ((*count as f64 / max as f64) * bar_width as f64).ceil() as usize;
        out.push_str(&format!(
            "{label:>label_width$} |{:<bar_width$}| {count}\n",
            "#".repeat(cols.min(bar_width)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins(counts: &[(&str, u64)]) -> Vec<(String, u64)> {
        counts.iter().map(|(l, n)| ((*l).to_string(), *n)).collect()
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        let out = render_histogram(&bins(&[("a", 1), ("b", 10)]), 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains(&"#".repeat(10)), "{out}");
        // 1/10 of 10 columns rounds up to one '#'.
        assert!(lines[0].contains('#'));
        assert!(!lines[0].contains("##"));
        assert!(lines[0].ends_with("| 1"));
        assert!(lines[1].ends_with("| 10"));
    }

    #[test]
    fn zero_count_rows_keep_their_label_with_an_empty_bar() {
        let out = render_histogram(&bins(&[("low", 0), ("high", 4)]), 8);
        assert!(out.lines().count() == 2);
        assert!(out.contains("low"));
        let low_line = out.lines().next().unwrap();
        assert!(!low_line.contains('#'));
    }

    #[test]
    fn empty_or_all_zero_input_says_no_data() {
        assert_eq!(render_histogram(&[], 10), "(no data)\n");
        assert_eq!(
            render_histogram(&bins(&[("a", 0), ("b", 0)]), 10),
            "(no data)\n"
        );
    }

    #[test]
    fn labels_right_align_to_the_widest() {
        let out = render_histogram(&bins(&[("ab", 1), ("abcdef", 1)]), 8);
        for line in out.lines() {
            assert_eq!(line.find('|'), Some(7), "{line:?}");
        }
    }

    #[test]
    fn width_is_clamped() {
        let out = render_histogram(&bins(&[("a", 5)]), 0);
        assert!(out.contains(&"#".repeat(8)));
        let out = render_histogram(&bins(&[("a", 5)]), 10_000);
        assert!(out.lines().next().unwrap().len() < 300);
    }
}
