//! # gables-market
//!
//! A seeded synthetic mobile-chipset dataset standing in for the paper's
//! Figure 2 sources, which are unavailable offline (see DESIGN.md):
//!
//! * **Figure 2a** mined GSM Arena (9165 phone models, 109 brands) for the
//!   number of new SoC chipsets introduced per year since 2007 — growth to
//!   a 2014–2015 peak, then a decline the authors attribute to vendors
//!   exiting the low-margin market (TI's OMAP, Intel) and consolidating
//!   their line-ups (Qualcomm: 49 chipsets in 2014 → 27 in 2017).
//! * **Figure 2b** plots the IP-block count of a state-of-the-art SoC per
//!   generation (after Shao et al.), climbing past 30.
//!
//! The generator reproduces those aggregate *shapes* with a deterministic,
//! seeded chipset database; per-year trend anchors are encoded as data and
//! asserted by tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use gables_model::rng::SplitMix64;

/// A synthetic chipset record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chipset {
    /// Vendor name.
    pub vendor: String,
    /// Model designation.
    pub model: String,
    /// Year of introduction.
    pub year: u32,
    /// Number of distinct IP blocks on die.
    pub ip_blocks: u32,
}

/// The modeled market years (matching Figure 2a's x-axis).
pub const YEARS: std::ops::RangeInclusive<u32> = 2007..=2017;

/// Trend anchors for new chipsets per year: rise from smartphone-boom 2007
/// to a 2014–2015 peak, then consolidation decline (Figure 2a's shape).
fn target_count(year: u32) -> u32 {
    match year {
        2007 => 12,
        2008 => 18,
        2009 => 27,
        2010 => 41,
        2011 => 60,
        2012 => 78,
        2013 => 95,
        2014 => 110,
        2015 => 104,
        2016 => 78,
        2017 => 62,
        _ => 0,
    }
}

/// Trend anchors for the IP-block count of a flagship SoC per generation
/// (Figure 2b's shape, after Shao et al.): climbing monotonically past 30.
pub fn flagship_ip_blocks(year: u32) -> u32 {
    match year {
        2007 => 6,
        2008 => 8,
        2009 => 10,
        2010 => 12,
        2011 => 15,
        2012 => 18,
        2013 => 21,
        2014 => 24,
        2015 => 26,
        2016 => 29,
        2017 => 32,
        _ => 0,
    }
}

/// The vendor roster with active year ranges, encoding the exits the paper
/// names (TI stopped OMAP; Intel departed consumer smartphones).
fn vendors() -> Vec<(&'static str, u32, u32, f64)> {
    // (name, first year, last year, market weight)
    vec![
        ("Qualcomm", 2007, 2017, 0.30),
        ("MediaTek", 2008, 2017, 0.25),
        ("Samsung", 2010, 2017, 0.12),
        ("HiSilicon", 2012, 2017, 0.08),
        ("Apple", 2010, 2017, 0.05),
        ("Spreadtrum", 2009, 2017, 0.08),
        ("Texas Instruments", 2007, 2012, 0.07),
        ("Intel", 2012, 2016, 0.03),
        ("Nvidia", 2008, 2015, 0.04),
        ("Marvell", 2007, 2014, 0.04),
        ("Broadcom", 2008, 2014, 0.03),
        ("Rockchip", 2010, 2017, 0.05),
    ]
}

/// The seeded synthetic market database.
#[derive(Debug, Clone, PartialEq)]
pub struct Market {
    chipsets: Vec<Chipset>,
}

impl Market {
    /// Generates the database from a seed. The same seed always produces
    /// the same database.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let roster = vendors();
        let mut chipsets = Vec::new();
        for year in YEARS {
            let total = target_count(year);
            let active: Vec<_> = roster
                .iter()
                .filter(|(_, from, to, _)| (*from..=*to).contains(&year))
                .collect();
            let weight_sum: f64 = active.iter().map(|(_, _, _, w)| w).sum();
            let mut produced = 0;
            for (k, (vendor, _, _, weight)) in active.iter().enumerate() {
                let share = if k == active.len() - 1 {
                    total - produced // exact remainder to hit the target
                } else {
                    ((total as f64) * weight / weight_sum).round() as u32
                };
                for n in 0..share {
                    let flagship = flagship_ip_blocks(year);
                    // Non-flagship parts integrate fewer IPs; flagships
                    // define the Figure 2b frontier.
                    let ip_blocks = if n == 0 {
                        flagship
                    } else {
                        let lo = (flagship / 2).max(3);
                        rng.range_u64(lo as u64, flagship as u64) as u32
                    };
                    chipsets.push(Chipset {
                        vendor: (*vendor).to_string(),
                        model: format!("{}-{}{:03}", vendor_code(vendor), year % 100, n),
                        year,
                        ip_blocks,
                    });
                }
                produced += share;
            }
        }
        Self { chipsets }
    }

    /// All chipset records.
    pub fn chipsets(&self) -> &[Chipset] {
        &self.chipsets
    }

    /// New chipsets introduced per year — the Figure 2a series.
    pub fn per_year_counts(&self) -> Vec<(u32, usize)> {
        YEARS
            .map(|y| (y, self.chipsets.iter().filter(|c| c.year == y).count()))
            .collect()
    }

    /// The maximum IP-block count per year — the Figure 2b series.
    pub fn flagship_ip_trend(&self) -> Vec<(u32, u32)> {
        YEARS
            .map(|y| {
                (
                    y,
                    self.chipsets
                        .iter()
                        .filter(|c| c.year == y)
                        .map(|c| c.ip_blocks)
                        .max()
                        .unwrap_or(0),
                )
            })
            .collect()
    }

    /// Chipsets introduced by one vendor in one year (the consolidation
    /// evidence: Qualcomm 2014 vs 2017 in the paper's footnote).
    pub fn vendor_count(&self, vendor: &str, year: u32) -> usize {
        self.chipsets
            .iter()
            .filter(|c| c.vendor == vendor && c.year == year)
            .count()
    }

    /// Distinct vendors active in a year.
    pub fn active_vendors(&self, year: u32) -> usize {
        let mut names: Vec<&str> = self
            .chipsets
            .iter()
            .filter(|c| c.year == year)
            .map(|c| c.vendor.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

fn vendor_code(vendor: &str) -> String {
    vendor
        .chars()
        .filter(|c| c.is_ascii_uppercase())
        .collect::<String>()
        .to_lowercase()
}

#[cfg(test)]
mod invariant_tests {
    use super::*;

    /// The Figure 2 shape anchors hold for every seed: per-year
    /// counts hit the trend exactly, the flagship IP trend is
    /// monotone past 30, and per-chipset IP counts stay within the
    /// generation's bounds.
    #[test]
    fn anchors_hold_for_any_seed() {
        let mut seed_rng = SplitMix64::new(0x2A2A);
        for _ in 0..24 {
            let seed = seed_rng.next_u64();
            let m = Market::generate(seed);
            for (year, count) in m.per_year_counts() {
                assert_eq!(count as u32, target_count(year), "seed {seed}");
            }
            let trend = m.flagship_ip_trend();
            for pair in trend.windows(2) {
                assert!(pair[1].1 >= pair[0].1, "seed {seed}");
            }
            assert!(trend.last().unwrap().1 > 30, "seed {seed}");
            for c in m.chipsets() {
                assert!(c.ip_blocks >= 3, "seed {seed}: {c:?}");
                assert!(
                    c.ip_blocks <= flagship_ip_blocks(c.year),
                    "seed {seed}: {c:?}"
                );
            }
            assert!(
                m.vendor_count("Qualcomm", 2017) < m.vendor_count("Qualcomm", 2014),
                "seed {seed}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Market::generate(7);
        let b = Market::generate(7);
        assert_eq!(a, b);
        let c = Market::generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn per_year_counts_hit_the_anchors() {
        let m = Market::generate(42);
        for (year, count) in m.per_year_counts() {
            assert_eq!(count as u32, target_count(year), "year {year}");
        }
    }

    #[test]
    fn figure_2a_shape_rises_then_falls() {
        let m = Market::generate(42);
        let counts = m.per_year_counts();
        let peak = counts.iter().max_by_key(|(_, c)| *c).unwrap();
        // Peak in 2014–2015, as the paper reports.
        assert!((2014..=2015).contains(&peak.0), "peak in {}", peak.0);
        // Monotone growth up to the peak, decline after 2015.
        for pair in counts.windows(2) {
            if pair[1].0 <= peak.0 {
                assert!(pair[1].1 >= pair[0].1);
            }
            if pair[0].0 >= 2015 {
                assert!(pair[1].1 <= pair[0].1);
            }
        }
    }

    #[test]
    fn figure_2b_trend_is_monotone_and_exceeds_30() {
        let m = Market::generate(42);
        let trend = m.flagship_ip_trend();
        for pair in trend.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!(
            trend.last().unwrap().1 > 30,
            "2017 flagship has {} IPs",
            trend.last().unwrap().1
        );
    }

    #[test]
    fn consolidation_evidence() {
        let m = Market::generate(42);
        // Qualcomm sheds chipset lines between 2014 and 2017 (paper: 49 -> 27).
        assert!(m.vendor_count("Qualcomm", 2017) < m.vendor_count("Qualcomm", 2014));
        // TI and Intel exit.
        assert_eq!(m.vendor_count("Texas Instruments", 2013), 0);
        assert!(m.vendor_count("Texas Instruments", 2012) > 0);
        assert_eq!(m.vendor_count("Intel", 2017), 0);
        // Fewer active vendors in 2017 than at the peak.
        assert!(m.active_vendors(2017) < m.active_vendors(2014));
    }

    #[test]
    fn ip_blocks_within_plausible_bounds() {
        let m = Market::generate(42);
        for c in m.chipsets() {
            assert!(c.ip_blocks >= 3, "{c:?}");
            assert!(c.ip_blocks <= flagship_ip_blocks(c.year), "{c:?}");
        }
    }

    #[test]
    fn model_names_are_unique() {
        use std::collections::HashSet;
        let m = Market::generate(42);
        let names: HashSet<String> = m
            .chipsets()
            .iter()
            .map(|c| format!("{} {}", c.vendor, c.model))
            .collect();
        assert_eq!(names.len(), m.chipsets().len());
    }
}
