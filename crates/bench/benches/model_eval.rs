//! Timing bench: analytical-model evaluation throughput.
//!
//! The model's whole value proposition is being cheap enough for
//! early-stage design-space sweeps; this bench quantifies evaluations per
//! second as the IP count grows.

use gables_bench::microbench::{black_box, Harness};
use gables_model::two_ip::TwoIpModel;
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};

fn n_ip_inputs(n: usize) -> (SocSpec, Workload) {
    let mut b = SocSpec::builder();
    b.ppeak(OpsPerSec::from_gops(10.0))
        .bpeak(BytesPerSec::from_gbps(30.0))
        .cpu("CPU", BytesPerSec::from_gbps(15.0));
    for i in 1..n {
        b.accelerator(
            format!("ACC{i}"),
            1.0 + i as f64,
            BytesPerSec::from_gbps(5.0 + i as f64),
        )
        .expect("valid");
    }
    let soc = b.build().expect("valid");
    let mut w = Workload::builder();
    let mut assigned = 0.0;
    for i in 0..n {
        let f = if i == n - 1 {
            1.0 - assigned
        } else {
            1.0 / n as f64
        };
        assigned += f;
        w.work(f, 8.0).expect("valid");
    }
    (soc, w.build().expect("valid"))
}

fn main() {
    let mut h = Harness::from_env();
    for n in [2usize, 8, 32, 128] {
        let (soc, w) = n_ip_inputs(n);
        h.bench(&format!("model_eval/n_ip/{n}"), || {
            evaluate(black_box(&soc), black_box(&w)).expect("valid");
        });
    }
    let m = TwoIpModel::figure_6d();
    h.bench("two_ip_figure_6d", || {
        black_box(&m).attainable_gops().expect("valid");
    });
    h.finish();
}
