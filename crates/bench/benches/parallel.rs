//! Timing bench for `gables_model::par`: the deterministic parallel
//! scheduler against its serial baseline on the two grid shapes the
//! suite parallelizes — a Figure-7-scale design-space exploration
//! (analytical model, thousands of tiny evaluations) and an ERT sweep
//! (simulator-backed, dozens of heavier runs).
//!
//! Besides the usual one-line-per-bench report, this bench writes a
//! machine-readable artifact (`target/figures/BENCH_parallel.json` by
//! default) recording the environment (`available_parallelism`, any
//! `GABLES_THREADS` override), per-policy wall times, and the measured
//! speedups, so speedup claims in the README trace to a reproducible
//! command. Determinism is asserted on every timed configuration: the
//! parallel results must equal the serial results exactly before a
//! timing is recorded.
//!
//! Environment knobs:
//!
//! * `GABLES_BENCH_OUT` — artifact path (default
//!   `target/figures/BENCH_parallel.json`).
//! * `GABLES_BENCH_SCALE` — explore-grid axis length (default 12, i.e.
//!   12^3 = 1728 candidates; CI smoke runs use a small value).

use std::time::{Duration, Instant};

use gables_model::explore::{explore_with, CandidateGrid, CostModel};
use gables_model::json::Json;
use gables_model::{Parallelism, Workload};
use gables_soc_sim::{presets, Simulator, TrafficPattern};

/// Times one closure: a warm-up call, then the minimum of `reps` timed
/// calls (minimum, not mean — scheduler noise only ever adds time).
fn time_min<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    f();
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn policy_label(par: Parallelism) -> String {
    match par {
        Parallelism::Serial => "serial".to_string(),
        Parallelism::Auto => "auto".to_string(),
        Parallelism::Threads(n) => format!("threads_{n}"),
    }
}

fn main() {
    let scale: usize = std::env::var("GABLES_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(12);
    let out_path = std::env::var("GABLES_BENCH_OUT")
        .unwrap_or_else(|_| "target/figures/BENCH_parallel.json".to_string());
    let policies = [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ];

    // Figure-7-scale exploration: scale^3 two-IP candidates.
    let axis = |lo: f64, hi: f64| -> Vec<f64> {
        (0..scale)
            .map(|k| lo + (hi - lo) * k as f64 / (scale - 1) as f64)
            .collect()
    };
    let grid = CandidateGrid {
        ppeak_gops: 40.0,
        b0_gbps: 6.0,
        accelerations: axis(1.0, 16.0),
        b1_gbps: axis(4.0, 32.0),
        bpeak_gbps: axis(6.0, 48.0),
    };
    let cost = CostModel::unit();
    let usecase = Workload::two_ip(0.75, 8.0, 0.25).expect("valid workload");
    let serial_points =
        explore_with(&grid, &cost, &usecase, Parallelism::Serial).expect("serial explore");

    let mut sections = Vec::new();
    let mut report_lines = Vec::new();
    {
        let mut rows = Vec::new();
        let mut serial_secs = 0.0;
        for par in policies {
            let got = explore_with(&grid, &cost, &usecase, par).expect("explore");
            assert_eq!(
                got, serial_points,
                "explore must be bit-identical ({par:?})"
            );
            let t = time_min(5, || {
                std::hint::black_box(explore_with(&grid, &cost, &usecase, par).expect("explore"));
            });
            let secs = t.as_secs_f64();
            if par == Parallelism::Serial {
                serial_secs = secs;
            }
            let speedup = serial_secs / secs;
            report_lines.push(format!(
                "explore_{}x3 {:<12} {:>10.3} ms  speedup {:.2}x",
                scale,
                policy_label(par),
                secs * 1e3,
                speedup
            ));
            rows.push(Json::Object(vec![
                ("policy".into(), Json::str(policy_label(par))),
                ("seconds".into(), Json::num(secs)),
                ("speedup_vs_serial".into(), Json::num(speedup)),
            ]));
        }
        sections.push((
            "explore".to_string(),
            Json::Object(vec![
                ("grid_points".into(), Json::num(serial_points.len() as f64)),
                ("timings".into(), Json::Array(rows)),
            ]),
        ));
    }

    // ERT sweep: simulator-backed grid, heavier per point.
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let config = gables_ert::SweepConfig {
        array_bytes: vec![64 << 10, 1 << 20, 16 << 20],
        flops_per_word: vec![1, 4, 16, 64, 256, 1024],
        trials: 1,
        pattern: TrafficPattern::ReadModifyWrite,
    };
    let serial_sweep = gables_ert::sweep_with(&sim, presets::CPU, &config, Parallelism::Serial)
        .expect("serial sweep");
    {
        let mut rows = Vec::new();
        let mut serial_secs = 0.0;
        for par in policies {
            let got =
                gables_ert::sweep_with(&sim, presets::CPU, &config, par).expect("parallel sweep");
            assert_eq!(
                got, serial_sweep,
                "ERT sweep must be bit-identical ({par:?})"
            );
            let t = time_min(3, || {
                std::hint::black_box(
                    gables_ert::sweep_with(&sim, presets::CPU, &config, par).expect("sweep"),
                );
            });
            let secs = t.as_secs_f64();
            if par == Parallelism::Serial {
                serial_secs = secs;
            }
            let speedup = serial_secs / secs;
            report_lines.push(format!(
                "ert_sweep    {:<12} {:>10.3} ms  speedup {:.2}x",
                policy_label(par),
                secs * 1e3,
                speedup
            ));
            rows.push(Json::Object(vec![
                ("policy".into(), Json::str(policy_label(par))),
                ("seconds".into(), Json::num(secs)),
                ("speedup_vs_serial".into(), Json::num(speedup)),
            ]));
        }
        sections.push((
            "ert_sweep".to_string(),
            Json::Object(vec![
                ("grid_points".into(), Json::num(serial_sweep.len() as f64)),
                ("timings".into(), Json::Array(rows)),
            ]),
        ));
    }

    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::Object(vec![
        ("bench".into(), Json::str("parallel")),
        ("available_parallelism".into(), Json::num(available as f64)),
        (
            "gables_threads_env".into(),
            std::env::var("GABLES_THREADS")
                .map(Json::str)
                .unwrap_or(Json::Null),
        ),
        ("explore_scale".into(), Json::num(scale as f64)),
        ("determinism_checked".into(), Json::Bool(true)),
        ("sections".into(), Json::Object(sections)),
    ]);

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    std::fs::write(&out_path, doc.to_string()).expect("write artifact");

    for line in &report_lines {
        println!("{line}");
    }
    println!(
        "wrote {out_path} (available_parallelism = {available}; speedups above 1x \
         require more than one core)"
    );
}
