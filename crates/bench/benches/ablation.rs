//! Timing bench: ablations of the simulator's design choices called
//! out in DESIGN.md — arbiter policy, the thermal model, and the two
//! cache-fidelity tiers.

use gables_bench::microbench::{black_box, Harness};
use gables_soc_sim::thermal::ThermalConfig;
use gables_soc_sim::{presets, ArbiterPolicy, Job, RooflineKernel, Simulator, TrafficPattern};

fn contended_jobs() -> Vec<Job> {
    vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(1),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(1)
            },
        },
    ]
}

fn bench_arbiter_policies(h: &mut Harness) {
    let jobs = contended_jobs();
    for (name, policy) in [
        ("arbiter_maxmin", ArbiterPolicy::MaxMin),
        ("arbiter_proportional", ArbiterPolicy::Proportional),
    ] {
        let sim = Simulator::new(presets::snapdragon_835_like())
            .expect("valid preset")
            .with_policy(policy);
        h.bench(name, || {
            sim.run(black_box(&jobs)).expect("runs");
        });
    }
}

fn bench_thermal(h: &mut Harness) {
    let jobs = vec![Job {
        ip: presets::CPU,
        kernel: RooflineKernel::dram_resident(1024),
    }];
    let cool = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    h.bench("thermal_chamber", || {
        cool.run(black_box(&jobs)).expect("runs");
    });
    let hot = Simulator::new(presets::snapdragon_835_like())
        .expect("valid preset")
        .with_thermal(ThermalConfig::phone_default());
    h.bench("thermal_throttled", || {
        hot.run(black_box(&jobs)).expect("runs");
    });
}

fn bench_cache_tiers(h: &mut Harness) {
    use gables_soc_sim::cache_sim::CacheConfig;
    use gables_soc_sim::hierarchy::HierarchySim;
    use gables_soc_sim::trace::TracePattern;

    // The cost gap between the engine's O(1) threshold cache model and
    // the trace-driven hierarchy tier, on the same working set.
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let kernel = RooflineKernel::dram_resident(8).with_array_bytes(1 << 20);
    h.bench("cache_tier_threshold", || {
        sim.run(black_box(&[Job {
            ip: presets::CPU,
            kernel,
        }]))
        .expect("runs");
    });

    let levels = vec![
        (
            "L1".to_string(),
            CacheConfig {
                capacity_bytes: 8 * (32 << 10),
                line_bytes: 64,
                associativity: 8,
            },
        ),
        (
            "L2".to_string(),
            CacheConfig {
                capacity_bytes: 2 << 20,
                line_bytes: 64,
                associativity: 16,
            },
        ),
    ];
    let trace = TracePattern::Stream {
        bytes: 1 << 20,
        stride: 64,
        passes: 2,
        write_back: true,
    }
    .generate();
    h.bench("cache_tier_trace_driven", || {
        let mut hier = HierarchySim::new(levels.clone(), 64).expect("valid geometry");
        hier.run_trace(black_box(&trace));
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_arbiter_policies(&mut h);
    bench_thermal(&mut h);
    bench_cache_tiers(&mut h);
    h.finish();
}
