//! Criterion bench: ablations of the simulator's design choices called
//! out in DESIGN.md — arbiter policy and the thermal model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gables_soc_sim::thermal::ThermalConfig;
use gables_soc_sim::{presets, ArbiterPolicy, Job, RooflineKernel, Simulator, TrafficPattern};

fn contended_jobs() -> Vec<Job> {
    vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(1),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(1)
            },
        },
    ]
}

fn bench_arbiter_policies(c: &mut Criterion) {
    let jobs = contended_jobs();
    for (name, policy) in [
        ("arbiter_maxmin", ArbiterPolicy::MaxMin),
        ("arbiter_proportional", ArbiterPolicy::Proportional),
    ] {
        let sim = Simulator::new(presets::snapdragon_835_like())
            .expect("valid preset")
            .with_policy(policy);
        c.bench_function(name, |b| {
            b.iter(|| sim.run(black_box(&jobs)).expect("runs"))
        });
    }
}

fn bench_thermal(c: &mut Criterion) {
    let jobs = vec![Job {
        ip: presets::CPU,
        kernel: RooflineKernel::dram_resident(1024),
    }];
    let cool = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    c.bench_function("thermal_chamber", |b| {
        b.iter(|| cool.run(black_box(&jobs)).expect("runs"))
    });
    let hot = Simulator::new(presets::snapdragon_835_like())
        .expect("valid preset")
        .with_thermal(ThermalConfig::phone_default());
    c.bench_function("thermal_throttled", |b| {
        b.iter(|| hot.run(black_box(&jobs)).expect("runs"))
    });
}

fn bench_cache_tiers(c: &mut Criterion) {
    use gables_soc_sim::cache_sim::CacheConfig;
    use gables_soc_sim::hierarchy::HierarchySim;
    use gables_soc_sim::trace::TracePattern;

    // The cost gap between the engine's O(1) threshold cache model and
    // the trace-driven hierarchy tier, on the same working set.
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let kernel = RooflineKernel::dram_resident(8).with_array_bytes(1 << 20);
    c.bench_function("cache_tier_threshold", |b| {
        b.iter(|| {
            sim.run(black_box(&[Job {
                ip: presets::CPU,
                kernel,
            }]))
            .expect("runs")
        })
    });

    let levels = vec![
        (
            "L1".to_string(),
            CacheConfig {
                capacity_bytes: 8 * (32 << 10),
                line_bytes: 64,
                associativity: 8,
            },
        ),
        (
            "L2".to_string(),
            CacheConfig {
                capacity_bytes: 2 << 20,
                line_bytes: 64,
                associativity: 16,
            },
        ),
    ];
    let trace = TracePattern::Stream {
        bytes: 1 << 20,
        stride: 64,
        passes: 2,
        write_back: true,
    }
    .generate();
    c.bench_function("cache_tier_trace_driven", |b| {
        b.iter(|| {
            let mut h = HierarchySim::new(levels.clone(), 64).expect("valid geometry");
            h.run_trace(black_box(&trace))
        })
    });
}

criterion_group!(benches, bench_arbiter_policies, bench_thermal, bench_cache_tiers);
criterion_main!(benches);
