//! The committed benchmark trajectory: five fixed-seed, fixed-scale
//! benches whose medians are snapshotted at the repository root
//! (`BENCH_eval.json`, `BENCH_sweep.json`, `BENCH_serve.json`,
//! `BENCH_parallel.json`, `BENCH_carm.json`) and regression-gated by
//! `scripts/perf_gate.sh` on every full `scripts/check.sh` run.
//!
//! Each artifact records the machine (`available_parallelism`, OS,
//! arch), the `GABLES_BENCH_SCALE` it was produced at, a `metrics`
//! object of gated numbers (all nanoseconds, lower is better), and an
//! `info` object of ungated context (allocation counts, speedups,
//! profiler overhead). The gate compares `metrics` only, and refuses to
//! compare artifacts produced at different scales.
//!
//! Environment knobs:
//!
//! * `GABLES_BENCH_TRAJECTORY_DIR` — output directory for the four
//!   candidate artifacts (default `target/trajectory`).
//! * `GABLES_BENCH_SCALE` — workload scale factor (default 8). The
//!   committed baselines record the scale they ran at; re-baseline with
//!   `scripts/perf_gate.sh --update` after changing it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gables_cli::serve::build_router;
use gables_cli::spec::FIGURE_6B_SPEC;
use gables_cli::{eval_command, sweep_command_with};
use gables_model::explore::{explore_with, CandidateGrid, CostModel};
use gables_model::json::Json;
use gables_model::prof::{self, AllocScope, SampleConfig};
use gables_model::{Parallelism, Workload};
use gables_serve::{Server, ServerConfig, ServerHandle, ShardedCache};

/// Median ns per operation: one warm-up batch, then `batches` timed
/// batches of `ops` calls each, taking the median of the per-batch
/// means. Batching keeps every timed region in the milliseconds so
/// scheduler noise amortizes instead of dominating the median — the
/// gated numbers must be stable run to run, not just centrally
/// located.
fn time_median_ns<F: FnMut()>(batches: usize, ops: usize, mut f: F) -> f64 {
    let ops = ops.max(1);
    let run_batch = |f: &mut F| -> f64 {
        let start = Instant::now();
        for _ in 0..ops {
            f();
        }
        start.elapsed().as_nanos() as f64 / ops as f64
    };
    run_batch(&mut f);
    let mut samples: Vec<f64> = (0..batches.max(1)).map(|_| run_batch(&mut f)).collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Minimum ns per operation over `batches` batches of `ops` calls. The
/// min, not the median: scheduler noise (CPU steal on shared machines)
/// only ever *adds* time, so the minimum is the stablest estimate of
/// the true cost — the same rationale as the `parallel` bench's
/// `time_min`. Used for the explore metric, whose sub-200µs calls are
/// the most exposed to steal spikes.
fn time_min_ns<F: FnMut()>(batches: usize, ops: usize, mut f: F) -> f64 {
    let ops = ops.max(1);
    f();
    (0..batches.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ops {
                f();
            }
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Nanoseconds for a fixed pure-CPU spin (integer mixing, no memory
/// traffic, no code under test). Committed alongside every artifact so
/// the perf gate can tell "this machine is in a slow episode" (both
/// the calibration and the metrics move together) from "the code got
/// slower" (the metrics move relative to the calibration).
fn calibration_ns() -> f64 {
    const ITERS: u64 = 2_000_000;
    let spin = || {
        // SplitMix64-style mixing: fixed instruction stream, cannot be
        // vectorized away, and never touches repository code.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..ITERS {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= z >> 31;
        }
        std::hint::black_box(x);
    };
    spin();
    (0..7)
        .map(|_| {
            let start = Instant::now();
            spin();
            start.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes one `BENCH_<name>.json` artifact with the shared schema.
fn write_artifact(
    dir: &str,
    name: &str,
    scale: usize,
    calibration: f64,
    metrics: Vec<(String, Json)>,
    info: Vec<(String, Json)>,
) -> String {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::Object(vec![
        ("bench".into(), Json::str(name)),
        ("schema".into(), Json::num(1.0)),
        (
            "machine".into(),
            Json::Object(vec![
                ("available_parallelism".into(), Json::num(available as f64)),
                ("os".into(), Json::str(std::env::consts::OS)),
                ("arch".into(), Json::str(std::env::consts::ARCH)),
            ]),
        ),
        ("gables_bench_scale".into(), Json::num(scale as f64)),
        ("calibration_ns".into(), Json::num(calibration)),
        ("metrics".into(), Json::Object(metrics)),
        ("info".into(), Json::Object(info)),
    ]);
    std::fs::create_dir_all(dir).expect("create trajectory dir");
    let path = format!("{dir}/BENCH_{name}.json");
    std::fs::write(&path, doc.to_string()).expect("write artifact");
    path
}

/// `eval` bench: the analytical model end to end through the CLI spec
/// parser, on the paper's Figure 6b SoC.
fn bench_eval(dir: &str, scale: usize, calibration: f64) {
    let reps = (64 * scale).max(128);
    let ns = time_median_ns(7, reps, || {
        std::hint::black_box(eval_command(FIGURE_6B_SPEC).expect("eval"));
    });
    let scope = AllocScope::begin();
    std::hint::black_box(eval_command(FIGURE_6B_SPEC).expect("eval"));
    let alloc = scope.delta();

    // Gated rung: the steady-state *model* evaluate (spec parsed once,
    // outside the scope) must do zero heap allocations per call. The
    // gate holds this at exactly zero, so any future allocation on the
    // hot path fails the trajectory instead of creeping in.
    let spec = gables_cli::spec::Spec::parse(FIGURE_6B_SPEC).expect("spec");
    let soc = spec.soc().expect("soc");
    let workload = spec.workload().expect("workload");
    for _ in 0..8 {
        std::hint::black_box(gables_model::evaluate(&soc, &workload).expect("evaluate"));
    }
    let steady_reps = 256u64;
    let steady = AllocScope::begin();
    for _ in 0..steady_reps {
        std::hint::black_box(gables_model::evaluate(&soc, &workload).expect("evaluate"));
    }
    let eval_allocs = steady.delta().allocs as f64 / steady_reps as f64;

    let path = write_artifact(
        dir,
        "eval",
        scale,
        calibration,
        vec![
            ("eval_ns".into(), Json::num(ns)),
            ("eval_allocs".into(), Json::num(eval_allocs)),
        ],
        vec![
            ("reps".into(), Json::num(reps as f64)),
            ("allocs_per_eval".into(), Json::num(alloc.allocs as f64)),
            ("alloc_bytes_per_eval".into(), Json::num(alloc.bytes as f64)),
        ],
    );
    println!(
        "eval      {:>12.0} ns/eval ({eval_allocs} allocs steady-state)  wrote {path}",
        ns
    );
}

/// `sweep` bench: an ERT-style intensity sweep, serial policy so the
/// gated number is independent of the machine's core count.
fn bench_sweep(dir: &str, scale: usize, calibration: f64) {
    let steps = 16 * scale;
    let run_steps = |steps: usize| {
        std::hint::black_box(
            sweep_command_with(
                FIGURE_6B_SPEC,
                "intensity",
                0.25,
                64.0,
                steps,
                Parallelism::Serial,
            )
            .expect("sweep"),
        );
    };
    let run = || run_steps(steps);
    let ns = time_median_ns(7, 20, run);
    let scope = AllocScope::begin();
    run();
    let alloc = scope.delta();

    // Gated rung: the marginal allocation cost of one extra sweep
    // point, from two sweeps that differ only in step count — the fixed
    // setup (result storage, parsed spec) cancels out. Held at exactly
    // zero by the gate.
    let base = AllocScope::begin();
    run_steps(steps);
    let small = base.delta();
    run_steps(steps * 2);
    let large = base.delta().since(small);
    let sweep_point_allocs = (large.allocs.saturating_sub(small.allocs)) as f64 / steps as f64;

    let path = write_artifact(
        dir,
        "sweep",
        scale,
        calibration,
        vec![
            ("sweep_serial_ns".into(), Json::num(ns)),
            ("sweep_point_ns".into(), Json::num(ns / (steps + 1) as f64)),
            ("sweep_point_allocs".into(), Json::num(sweep_point_allocs)),
        ],
        vec![
            ("steps".into(), Json::num(steps as f64)),
            (
                "allocs_per_point".into(),
                Json::num(alloc.allocs as f64 / (steps + 1) as f64),
            ),
        ],
    );
    println!(
        "sweep     {:>12.0} ns/sweep ({} pts, {sweep_point_allocs} allocs/extra pt)  wrote {path}",
        ns,
        steps + 1
    );
}

/// `parallel` bench: the Figure-7-scale design-space exploration. Only
/// the serial time is gated — the two-thread time and the speedup are
/// recorded as context, because they depend on the machine's core
/// count and scheduler, not on this repository's code.
fn bench_parallel(dir: &str, scale: usize, calibration: f64) {
    let axis = |lo: f64, hi: f64| -> Vec<f64> {
        (0..scale)
            .map(|k| lo + (hi - lo) * k as f64 / (scale - 1) as f64)
            .collect()
    };
    let grid = CandidateGrid {
        ppeak_gops: 40.0,
        b0_gbps: 6.0,
        accelerations: axis(1.0, 16.0),
        b1_gbps: axis(4.0, 32.0),
        bpeak_gbps: axis(6.0, 48.0),
    };
    let cost = CostModel::unit();
    let usecase = Workload::two_ip(0.75, 8.0, 0.25).expect("valid workload");
    let serial_points =
        explore_with(&grid, &cost, &usecase, Parallelism::Serial).expect("serial explore");
    let parallel_points =
        explore_with(&grid, &cost, &usecase, Parallelism::Threads(2)).expect("parallel explore");
    assert_eq!(
        serial_points, parallel_points,
        "explore must be bit-identical across policies"
    );

    let serial_ns = time_min_ns(12, 25, || {
        std::hint::black_box(
            explore_with(&grid, &cost, &usecase, Parallelism::Serial).expect("explore"),
        );
    });
    let threads2_ns = time_min_ns(12, 25, || {
        std::hint::black_box(
            explore_with(&grid, &cost, &usecase, Parallelism::Threads(2)).expect("explore"),
        );
    });
    let path = write_artifact(
        dir,
        "parallel",
        scale,
        calibration,
        vec![("explore_serial_ns".into(), Json::num(serial_ns))],
        vec![
            ("grid_points".into(), Json::num(serial_points.len() as f64)),
            ("explore_threads2_ns".into(), Json::num(threads2_ns)),
            (
                "speedup_threads2".into(),
                Json::num(serial_ns / threads2_ns),
            ),
            ("determinism_checked".into(), Json::Bool(true)),
        ],
    );
    println!(
        "parallel  {:>12.0} ns serial / {:.0} ns threads_2  wrote {path}",
        serial_ns, threads2_ns
    );
}

/// `carm` bench: the cache-hierarchy bandwidth-ladder sweep that feeds
/// the cache-aware roofline. Only the serial time is gated (the
/// two-thread time depends on the machine); serial and two-thread
/// ladders are asserted bit-identical first, so the gated number always
/// covers a verified-deterministic configuration.
fn bench_carm(dir: &str, scale: usize, calibration: f64) {
    use gables_soc_sim::cache_sim::CacheConfig;
    use gables_soc_sim::{measure_bandwidth_ladder, HierarchyConfig, LevelConfig};

    let level = |name: &str, cap: u64, assoc: u32, lat: f64| LevelConfig {
        name: name.to_string(),
        geometry: CacheConfig {
            capacity_bytes: cap,
            line_bytes: 64,
            associativity: assoc,
        },
        latency_ns: lat,
        policy: gables_soc_sim::ReplacementPolicy::Lru,
        victim_lines: 0,
    };
    let config = HierarchyConfig {
        levels: vec![
            level("l1", 8 << 10, 4, 1.0),
            level("l2", 64 << 10, 8, 4.0),
            level("slc", 256 << 10, 16, 12.0),
        ],
        dram_latency_ns: 80.0,
    };
    let accesses = (1_000 * scale as u64).max(4_000);
    let seed = 0xCAB1E;

    let serial = measure_bandwidth_ladder(&config, accesses, seed, Parallelism::Serial)
        .expect("serial ladder");
    let threads2 = measure_bandwidth_ladder(&config, accesses, seed, Parallelism::Threads(2))
        .expect("threads_2 ladder");
    assert_eq!(
        serial, threads2,
        "ladder must be bit-identical across policies"
    );

    let serial_ns = time_min_ns(7, 3, || {
        std::hint::black_box(
            measure_bandwidth_ladder(&config, accesses, seed, Parallelism::Serial).expect("ladder"),
        );
    });
    let threads2_ns = time_min_ns(7, 3, || {
        std::hint::black_box(
            measure_bandwidth_ladder(&config, accesses, seed, Parallelism::Threads(2))
                .expect("ladder"),
        );
    });
    let path = write_artifact(
        dir,
        "carm",
        scale,
        calibration,
        vec![("carm_ladder_serial_ns".into(), Json::num(serial_ns))],
        vec![
            ("ladder_rungs".into(), Json::num(serial.len() as f64)),
            ("accesses_per_rung".into(), Json::num(accesses as f64)),
            ("ladder_threads2_ns".into(), Json::num(threads2_ns)),
            (
                "speedup_threads2".into(),
                Json::num(serial_ns / threads2_ns),
            ),
            ("determinism_checked".into(), Json::Bool(true)),
        ],
    );
    println!(
        "carm      {:>12.0} ns serial / {:.0} ns threads_2  wrote {path}",
        serial_ns, threads2_ns
    );
}

/// One full close-delimited HTTP exchange against the loopback server.
fn http_post(addr: SocketAddr, target: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "POST {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) if !bytes.is_empty() => break,
            Err(e) => panic!("read reply: {e}"),
        }
    }
    let reply = String::from_utf8_lossy(&bytes);
    let status = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    status
}

/// Drives `threads × per_thread` `/eval` requests and returns the
/// wall-clock nanoseconds per request.
fn serve_batch_ns(addr: SocketAddr, threads: usize, per_thread: usize) -> f64 {
    let start = Instant::now();
    let clients: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // Cosmetic comment varies the body so cache hits prove
                    // canonicalization rather than byte equality.
                    let spec = format!("# probe {t}/{i}\n{FIGURE_6B_SPEC}");
                    let status = http_post(addr, "/v1/eval?format=text", &spec);
                    assert_eq!(status, 200, "eval request failed");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    start.elapsed().as_nanos() as f64 / (threads * per_thread) as f64
}

/// Reads one `Content-Length`-framed response off a keep-alive stream
/// and asserts it is a 200.
fn read_framed_ok(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF before the response head completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).expect("UTF-8 head");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF before the response body completed");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Drives `threads × per_thread` `/v1/eval` requests with one
/// keep-alive connection per thread (no per-request connect/close);
/// returns wall-clock nanoseconds per request.
fn serve_keepalive_batch_ns(addr: SocketAddr, threads: usize, per_thread: usize) -> f64 {
    let start = Instant::now();
    let clients: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for i in 0..per_thread {
                    let spec = format!("# keepalive {t}/{i}\n{FIGURE_6B_SPEC}");
                    let raw = format!(
                        "POST /v1/eval?format=text HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{spec}",
                        spec.len()
                    );
                    stream.write_all(raw.as_bytes()).expect("send request");
                    read_framed_ok(&mut stream);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    start.elapsed().as_nanos() as f64 / (threads * per_thread) as f64
}

/// POSTs one `/v1/batch` envelope of `items` cosmetically-varied specs
/// and returns wall-clock nanoseconds per item.
fn serve_batch_endpoint_ns(addr: SocketAddr, items: usize) -> f64 {
    let specs: Vec<String> = (0..items)
        .map(|i| Json::str(format!("# batch {i}\n{FIGURE_6B_SPEC}")).to_string())
        .collect();
    let payload = format!("{{\"specs\":[{}]}}", specs.join(","));
    let start = Instant::now();
    let status = http_post(addr, "/v1/batch", &payload);
    assert_eq!(status, 200, "batch request failed");
    start.elapsed().as_nanos() as f64 / items as f64
}

/// `serve` bench: loopback request latency with and without a live
/// profiling session, so the committed artifact records the sampler's
/// measured overhead. Base and profiled batches alternate (base,
/// profiled, base, profiled, ...) and each side takes its median, so a
/// frequency or load shift mid-bench lands on both sides instead of
/// masquerading as profiler overhead. Two further rungs gate the event
/// loop's steady-state paths: `serve_keepalive_request_ns` (framed
/// requests reusing one connection per client) and
/// `serve_batch_item_ns` (per-item cost of one `/v1/batch` envelope).
fn bench_serve(dir: &str, scale: usize, calibration: f64) {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let handle: ServerHandle = server.handle().expect("server handle");
    let addr = handle.addr();
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(8, 128)));
    let join = std::thread::spawn(move || server.run(router).expect("server run"));

    let threads = 4;
    let per_thread = (16 * scale).max(32);
    // Warm-up batch (connection setup, cache population, first-touch).
    serve_batch_ns(addr, threads, per_thread / 4);

    let rounds = 3;
    let mut base_samples = Vec::with_capacity(rounds);
    let mut profiled_samples = Vec::with_capacity(rounds);
    let mut samples_total = 0u64;
    for _ in 0..rounds {
        base_samples.push(serve_batch_ns(addr, threads, per_thread));
        let session = prof::start(SampleConfig::default()).expect("profiler session");
        profiled_samples.push(serve_batch_ns(addr, threads, per_thread));
        samples_total += session.stop().samples_total;
    }
    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_unstable_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let base_ns = median(&mut base_samples);
    let profiled_ns = median(&mut profiled_samples);
    let overhead_pct = (profiled_ns - base_ns) / base_ns * 100.0;

    // Keep-alive rung: same request mix, one persistent connection per
    // client thread. Warm up once, then take the median of three.
    serve_keepalive_batch_ns(addr, threads, per_thread / 4);
    let mut keepalive_samples: Vec<f64> = (0..rounds)
        .map(|_| serve_keepalive_batch_ns(addr, threads, per_thread))
        .collect();
    let keepalive_ns = median(&mut keepalive_samples);

    // Batch rung: one `/v1/batch` envelope per sample, per-item cost.
    let batch_items = (16 * scale).clamp(32, 256);
    serve_batch_endpoint_ns(addr, batch_items);
    let mut batch_samples: Vec<f64> = (0..rounds)
        .map(|_| serve_batch_endpoint_ns(addr, batch_items))
        .collect();
    let batch_ns = median(&mut batch_samples);

    handle.shutdown();
    join.join().expect("server thread");

    let path = write_artifact(
        dir,
        "serve",
        scale,
        calibration,
        vec![
            ("serve_request_ns".into(), Json::num(base_ns)),
            ("serve_keepalive_request_ns".into(), Json::num(keepalive_ns)),
            ("serve_batch_item_ns".into(), Json::num(batch_ns)),
        ],
        vec![
            ("batch_items".into(), Json::num(batch_items as f64)),
            ("client_threads".into(), Json::num(threads as f64)),
            (
                "requests_per_batch".into(),
                Json::num((threads * per_thread) as f64),
            ),
            ("batches_per_side".into(), Json::num(rounds as f64)),
            ("profiled_request_ns".into(), Json::num(profiled_ns)),
            ("profiler_overhead_pct".into(), Json::num(overhead_pct)),
            (
                "profile_samples_total".into(),
                Json::num(samples_total as f64),
            ),
        ],
    );
    println!(
        "serve     {:>12.0} ns/request / {:.0} ns keep-alive / {:.0} ns batch item (profiler overhead {overhead_pct:+.1}%)  wrote {path}",
        base_ns, keepalive_ns, batch_ns
    );
}

fn main() {
    let scale: usize = std::env::var("GABLES_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(8);
    let dir = std::env::var("GABLES_BENCH_TRAJECTORY_DIR")
        .unwrap_or_else(|_| "target/trajectory".to_string());

    bench_eval(&dir, scale, calibration_ns());
    bench_sweep(&dir, scale, calibration_ns());
    bench_parallel(&dir, scale, calibration_ns());
    bench_serve(&dir, scale, calibration_ns());
    bench_carm(&dir, scale, calibration_ns());
    println!("trajectory complete (scale {scale}) -> {dir}");
}
