//! Timing bench: simulator throughput on the Algorithm-1 kernel,
//! single-IP and concurrent.

use gables_bench::microbench::{black_box, Harness};
use gables_soc_sim::{presets, Job, RooflineKernel, Simulator, TrafficPattern};

fn main() {
    let mut h = Harness::from_env();
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");

    for fpw in [1u32, 64, 1024] {
        let kernel = RooflineKernel::dram_resident(fpw);
        h.bench(&format!("sim_single_ip/cpu_fpw/{fpw}"), || {
            sim.run(black_box(&[Job {
                ip: presets::CPU,
                kernel,
            }]))
            .expect("runs");
        });
    }

    let jobs = vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(8)
            },
        },
        Job {
            ip: presets::DSP,
            kernel: RooflineKernel::dram_resident(8),
        },
    ];
    h.bench("sim_three_ip_concurrent", || {
        sim.run(black_box(&jobs)).expect("runs");
    });
    h.finish();
}
