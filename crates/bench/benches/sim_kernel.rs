//! Criterion bench: simulator throughput on the Algorithm-1 kernel,
//! single-IP and concurrent.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gables_soc_sim::{presets, Job, RooflineKernel, Simulator, TrafficPattern};

fn bench_single(c: &mut Criterion) {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let mut group = c.benchmark_group("sim_single_ip");
    for fpw in [1u32, 64, 1024] {
        let kernel = RooflineKernel::dram_resident(fpw);
        group.bench_with_input(BenchmarkId::new("cpu_fpw", fpw), &kernel, |b, k| {
            b.iter(|| {
                sim.run(black_box(&[Job {
                    ip: presets::CPU,
                    kernel: *k,
                }]))
                .expect("runs")
            })
        });
    }
    group.finish();
}

fn bench_concurrent(c: &mut Criterion) {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let jobs = vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(8)
            },
        },
        Job {
            ip: presets::DSP,
            kernel: RooflineKernel::dram_resident(8),
        },
    ];
    c.bench_function("sim_three_ip_concurrent", |b| {
        b.iter(|| sim.run(black_box(&jobs)).expect("runs"))
    });
}

criterion_group!(benches, bench_single, bench_concurrent);
criterion_main!(benches);
