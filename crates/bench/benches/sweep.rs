//! Timing bench: end-to-end experiment harnesses — a reduced ERT sweep
//! (Figure 7 pipeline) and a reduced mixing sweep (Figure 8 pipeline).

use gables_bench::microbench::Harness;
use gables_ert::{measure, SweepConfig};
use gables_soc_sim::{presets, MixHarness, Simulator, TrafficPattern};

fn main() {
    let mut h = Harness::from_env();
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");

    let cfg = SweepConfig {
        array_bytes: vec![64 << 10, 4 << 20, 64 << 20],
        flops_per_word: vec![1, 16, 256, 4096],
        trials: 1,
        pattern: TrafficPattern::ReadModifyWrite,
    };
    h.bench("ert_sweep_cpu_reduced", || {
        measure(&sim, presets::CPU, &cfg).expect("runs");
    });

    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    h.bench("fig8_mix_sweep_reduced", || {
        harness.sweep(&[1.0, 1024.0], 4).expect("runs");
    });
    h.finish();
}
