//! Criterion bench: end-to-end experiment harnesses — a reduced ERT sweep
//! (Figure 7 pipeline) and a reduced mixing sweep (Figure 8 pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use gables_ert::{measure, SweepConfig};
use gables_soc_sim::{presets, MixHarness, Simulator, TrafficPattern};

fn bench_ert(c: &mut Criterion) {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let cfg = SweepConfig {
        array_bytes: vec![64 << 10, 4 << 20, 64 << 20],
        flops_per_word: vec![1, 16, 256, 4096],
        trials: 1,
        pattern: TrafficPattern::ReadModifyWrite,
    };
    c.bench_function("ert_sweep_cpu_reduced", |b| {
        b.iter(|| measure(&sim, presets::CPU, &cfg).expect("runs"))
    });
}

fn bench_mix(c: &mut Criterion) {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    c.bench_function("fig8_mix_sweep_reduced", |b| {
        b.iter(|| harness.sweep(&[1.0, 1024.0], 4).expect("runs"))
    });
}

criterion_group!(benches, bench_ert, bench_mix);
criterion_main!(benches);
