//! Experiment reports: the paper-anchor-vs-measured tables every
//! regeneration binary prints.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What is being compared (e.g. `"CPU peak GFLOPS/s"`).
    pub metric: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measures.
    pub measured: f64,
}

impl Row {
    /// Relative error of the measurement against the paper anchor.
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            return if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.measured - self.paper).abs() / self.paper.abs()
    }
}

/// A regenerated experiment: identification, comparison rows, free-form
/// notes, and written artifacts (SVG plots, tables).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Experiment id (e.g. `"fig6"`).
    pub id: String,
    /// Human title (e.g. `"Figure 6: two-IP Gables progression"`).
    pub title: String,
    /// Paper-vs-measured rows.
    pub rows: Vec<Row>,
    /// Free-form body (tables, series, commentary).
    pub body: String,
    /// Paths of artifacts written to disk.
    pub artifacts: Vec<PathBuf>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            ..Self::default()
        }
    }

    /// Adds a paper-vs-measured row.
    pub fn row(&mut self, metric: impl Into<String>, paper: f64, measured: f64) -> &mut Self {
        self.rows.push(Row {
            metric: metric.into(),
            paper,
            measured,
        });
        self
    }

    /// Appends a body line.
    pub fn line(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.body.push_str(text.as_ref());
        self.body.push('\n');
        self
    }

    /// Writes an artifact file under `dir` and records its path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating `dir` or writing the file.
    pub fn artifact(
        &mut self,
        dir: &Path,
        name: &str,
        contents: &str,
    ) -> std::io::Result<&mut Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        fs::write(&path, contents)?;
        self.artifacts.push(path);
        Ok(self)
    }

    /// The worst relative error across all rows (0 when there are none).
    pub fn max_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .map(Row::relative_error)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        if !self.rows.is_empty() {
            writeln!(
                f,
                "{:<44} {:>12} {:>12} {:>8}",
                "metric", "paper", "measured", "err%"
            )?;
            for r in &self.rows {
                writeln!(
                    f,
                    "{:<44} {:>12.4} {:>12.4} {:>7.2}%",
                    r.metric,
                    r.paper,
                    r.measured,
                    100.0 * r.relative_error()
                )?;
            }
        }
        if !self.body.is_empty() {
            writeln!(f, "{}", self.body)?;
        }
        for a in &self.artifacts {
            writeln!(f, "wrote {}", a.display())?;
        }
        Ok(())
    }
}

/// The default output directory for figure artifacts.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/figures")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error() {
        let r = Row {
            metric: "x".into(),
            paper: 10.0,
            measured: 11.0,
        };
        assert!((r.relative_error() - 0.1).abs() < 1e-12);
        let z = Row {
            metric: "z".into(),
            paper: 0.0,
            measured: 0.0,
        };
        assert_eq!(z.relative_error(), 0.0);
        let inf = Row {
            metric: "i".into(),
            paper: 0.0,
            measured: 1.0,
        };
        assert!(inf.relative_error().is_infinite());
    }

    #[test]
    fn display_includes_rows_and_body() {
        let mut rep = Report::new("fig0", "test figure");
        rep.row("peak", 7.5, 7.49).line("hello");
        let text = rep.to_string();
        assert!(text.contains("== fig0 — test figure =="));
        assert!(text.contains("peak"));
        assert!(text.contains("hello"));
    }

    #[test]
    fn artifact_round_trip() {
        let dir = std::env::temp_dir().join("gables-bench-test");
        let mut rep = Report::new("t", "t");
        rep.artifact(&dir, "x.svg", "<svg/>").unwrap();
        assert_eq!(rep.artifacts.len(), 1);
        assert_eq!(
            std::fs::read_to_string(&rep.artifacts[0]).unwrap(),
            "<svg/>"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_relative_error_over_rows() {
        let mut rep = Report::new("t", "t");
        assert_eq!(rep.max_relative_error(), 0.0);
        rep.row("a", 10.0, 10.5).row("b", 10.0, 12.0);
        assert!((rep.max_relative_error() - 0.2).abs() < 1e-12);
    }
}
