//! Figure 6: the two-IP Gables walkthrough (a–d), asserted against the
//! paper appendix's exact numbers.

use std::path::Path;

use gables_model::two_ip::TwoIpModel;
use gables_model::viz::gables_plot_data;
use gables_plot::render_gables_plot;

use crate::report::Report;

/// Regenerates Figures 6a–6d: evaluates each appendix scenario, prints
/// every intermediate term the appendix prints, and renders the four
/// multi-roofline plots.
///
/// # Errors
///
/// Propagates I/O errors when writing the SVG artifacts.
pub fn fig6(out_dir: &Path) -> std::io::Result<Report> {
    let mut rep = Report::new("fig6", "Two-IP Gables progression (appendix numbers)");
    for (name, model, expected) in TwoIpModel::figure_6_progression() {
        let eval = model.evaluate().expect("appendix parameters are valid");
        rep.row(
            format!("6{name}: Pattainable (Gops/s)", name = &name[1..]),
            expected,
            eval.attainable().to_gops(),
        );
        rep.line(format!(
            "figure {name}: Ppeak={} Bpeak={} A={} B0={} B1={} f={} I0={} I1={}",
            model.ppeak_gops,
            model.bpeak_gbps,
            model.acceleration,
            model.b0_gbps,
            model.b1_gbps,
            model.f,
            model.i0,
            model.i1
        ));
        for (i, ip) in eval.ips().iter().enumerate() {
            match ip.perf_bound {
                Some(b) => rep.line(format!("  1/TIP[{i}] = {:.4} Gops/s", b.to_gops())),
                None => rep.line(format!("  1/TIP[{i}] omitted (f{i} = 0)")),
            };
        }
        rep.line(format!(
            "  1/Tmemory = {:.4} Gops/s (Iavg = {:.5})",
            eval.memory_bound().to_gops(),
            eval.iavg().map(|i| i.value()).unwrap_or(f64::NAN)
        ));
        rep.line(format!("  bottleneck: {}", eval.bottleneck()));
        if name == "6d" {
            rep.line(format!("  balanced design: {}", eval.is_balanced(1e-9)));
        }

        let soc = model.soc().expect("valid");
        let workload = model.workload().expect("valid");
        let data = gables_plot_data(&soc, &workload, 0.01, 100.0, 96).expect("valid plot range");
        let svg = render_gables_plot(&data, &format!("Figure {name}"));
        rep.artifact(out_dir, &format!("fig{name}.svg"), &svg)?;
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_values_are_exact() {
        let dir = std::env::temp_dir().join(format!("gables-fig6-{}", std::process::id()));
        let rep = fig6(&dir).unwrap();
        // The model reproduces the appendix to rounding (the paper prints
        // 1.3 for 1.3278; we compare to full precision anchors).
        assert!(rep.max_relative_error() < 1e-9, "{rep}");
        assert_eq!(rep.rows.len(), 4);
        assert_eq!(rep.artifacts.len(), 4);
        assert!(rep.body.contains("balanced design: true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
