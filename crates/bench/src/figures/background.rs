//! Background figures and tables: Figure 1 (classic Roofline), Figure 2
//! (market trends), Figure 3 (SoC block diagram as topology text), Figure
//! 4 (WiFi streaming dataflow), Table I (usecase concurrency), Table II
//! (parameter glossary).

use std::path::Path;

use gables_market::Market;
use gables_model::baselines::roofline::Roofline;
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_plot::{render_ascii, render_line_chart, render_roofline, ChartConfig, Series};
use gables_soc_sim::presets;
use gables_usecase::{flows::streaming_wifi, render_table1};

use crate::report::Report;

/// Figure 1: the classic Roofline model plot (reprinted from Williams et
/// al. in the paper). Rendered for a generic multicore chip.
///
/// # Errors
///
/// Propagates I/O errors when writing the SVG artifact.
pub fn fig1(out_dir: &Path) -> std::io::Result<Report> {
    let mut rep = Report::new("fig1", "Classic Roofline model (Williams et al.)");
    let roofline = Roofline::new(OpsPerSec::from_gops(64.0), BytesPerSec::from_gbps(16.0))
        .expect("static parameters are valid");
    rep.line(format!("{roofline}"));
    rep.line("attainable = min(Ppeak, Bpeak x I); ridge point separates regimes");
    let series = vec![Series {
        label: "roofline".into(),
        points: gables_model::viz::log_space(0.0625, 256.0, 64)
            .into_iter()
            .map(|x| {
                (
                    x,
                    roofline
                        .attainable(gables_model::units::OpsPerByte::new(x))
                        .to_gops(),
                )
            })
            .collect(),
    }];
    rep.line(render_ascii(&series, 64, 14, true, true));
    let svg = render_roofline(&roofline, "Figure 1: Roofline model", 0.0625, 256.0);
    rep.artifact(out_dir, "fig1_roofline.svg", &svg)?;
    Ok(rep)
}

/// Figure 2: (a) SoC chipsets introduced per year; (b) IP blocks per
/// flagship SoC. Uses the seeded synthetic market substrate (DESIGN.md
/// substitution 2) with the paper's trend anchors as the paper column.
///
/// # Errors
///
/// Propagates I/O errors when writing the SVG artifacts.
pub fn fig2(out_dir: &Path) -> std::io::Result<Report> {
    let mut rep = Report::new("fig2", "SoC market trends (synthetic substrate)");
    let market = Market::generate(42);

    let counts = market.per_year_counts();
    let peak = counts.iter().max_by_key(|(_, c)| *c).expect("years exist");
    // Paper anchors: peak in 2014-2015, decline after 2015; Qualcomm 49
    // chipsets in 2014 vs 27 in 2017 (footnote 2): we check the *shape*.
    rep.row("2a: peak year", 2014.5, peak.0 as f64);
    rep.row(
        "2a: 2017 count / peak count",
        62.0 / 110.0,
        counts.last().expect("2017").1 as f64 / peak.1 as f64,
    );
    let trend = market.flagship_ip_trend();
    rep.row(
        "2b: flagship IP blocks (latest gen)",
        32.0,
        trend.last().expect("2017").1 as f64,
    );

    rep.line("year  new chipsets  flagship IP blocks");
    for ((y, c), (_, ips)) in counts.iter().zip(&trend) {
        rep.line(format!("{y}  {c:>12}  {ips:>18}"));
    }
    // Footnote 2's consolidation evidence, from the synthetic roster.
    rep.line(format!(
        "consolidation: Qualcomm {} chipsets in 2014 vs {} in 2017 (paper: 49 vs 27); \
         TI exits after 2012 ({} in 2013), Intel after 2016 ({} in 2017); \
         active vendors {} (2014) -> {} (2017)",
        market.vendor_count("Qualcomm", 2014),
        market.vendor_count("Qualcomm", 2017),
        market.vendor_count("Texas Instruments", 2013),
        market.vendor_count("Intel", 2017),
        market.active_vendors(2014),
        market.active_vendors(2017),
    ));

    let series_a = vec![Series {
        label: "new chipsets/year".into(),
        points: counts.iter().map(|&(y, c)| (y as f64, c as f64)).collect(),
    }];
    let svg_a = render_line_chart(
        &ChartConfig::linear("Figure 2a: SoC chipsets per year", "year", "chipsets"),
        &series_a,
        &[],
    );
    rep.artifact(out_dir, "fig2a_chipsets_per_year.svg", &svg_a)?;

    let series_b = vec![Series {
        label: "IP blocks (flagship)".into(),
        points: trend.iter().map(|&(y, c)| (y as f64, c as f64)).collect(),
    }];
    let svg_b = render_line_chart(
        &ChartConfig::linear("Figure 2b: IP blocks per generation", "year", "IP blocks"),
        &series_b,
        &[],
    );
    rep.artifact(out_dir, "fig2b_ip_blocks.svg", &svg_b)?;
    Ok(rep)
}

/// Figure 3: the example SoC block diagram, reported as the simulator
/// preset's topology.
pub fn fig3() -> Report {
    let mut rep = Report::new("fig3", "Example mobile SoC topology (simulator preset)");
    let soc = presets::snapdragon_835_like();
    rep.line(soc.to_string());
    for (i, f) in soc.fabrics.iter().enumerate() {
        let members: Vec<&str> = soc
            .ips
            .iter()
            .filter(|ip| ip.fabric == i)
            .map(|ip| ip.name.as_str())
            .collect();
        rep.line(format!("fabric {} ({}): {}", i, f.name, members.join(", ")));
    }
    rep
}

/// Figure 4: the streaming-over-WiFi usecase dataflow.
pub fn fig4() -> Report {
    let mut rep = Report::new("fig4", "Streaming internet content over WiFi usecase");
    let flow = streaming_wifi();
    flow.validate().expect("static flow is valid");
    rep.line(flow.to_string());
    rep.row(
        "standing DRAM traffic (GB/s, model)",
        0.38, // decoded 1080p60 frames dominate: ~186.6 MB/s x 2 crossings
        flow.dram_bytes_per_sec() / 1e9,
    );
    let inputs = gables_usecase::derive_inputs(&flow).expect("flow has compute");
    rep.line("derived Gables inputs (fi, Ii):");
    for row in gables_usecase::gables::input_rows(&flow, &inputs) {
        rep.line(format!(
            "  {:<12} f = {:.4}  I = {:>10.4} ops/B  ({:.2} Gops/s, {:.4} GB/s)",
            row.ip.short_name(),
            row.fraction,
            row.intensity,
            row.gops_per_sec,
            row.dram_gbps
        ));
    }
    rep
}

/// Table I: the usecase × IP concurrency matrix.
pub fn table1() -> Report {
    let mut rep = Report::new("table1", "Usecase / IP concurrency matrix");
    rep.line(render_table1());
    let usecases = gables_usecase::table1_usecases();
    let min_active = usecases
        .iter()
        .map(gables_usecase::Usecase::concurrency)
        .min()
        .expect("five usecases");
    rep.row("minimum concurrently active IPs", 5.0, min_active as f64);
    rep.row("usecase count", 5.0, usecases.len() as f64);
    rep
}

/// Table II: the Gables parameter glossary, printed from the types that
/// implement it.
pub fn table2() -> Report {
    let mut rep = Report::new("table2", "Gables model parameter glossary");
    for (param, desc) in [
        (
            "Ppeak",
            "peak performance of CPUs (ops/sec) — SocSpec::ppeak",
        ),
        (
            "Bpeak",
            "peak off-chip bandwidth (bytes/sec) — SocSpec::bpeak",
        ),
        ("Ai", "peak acceleration of IP[i] — IpSpec::acceleration"),
        ("Bi", "peak bandwidth to/from IP[i] — IpSpec::bandwidth"),
        (
            "fi",
            "fraction of usecase work at IP[i] — WorkAssignment::fraction",
        ),
        (
            "Ii",
            "operational intensity at IP[i] — WorkAssignment::intensity",
        ),
        ("Ci", "compute time at IP[i] — IpBreakdown::compute_time"),
        ("Di", "data transferred for IP[i] — IpBreakdown::data"),
        ("TIP[i]", "time at IP[i] — IpBreakdown::time"),
        (
            "Tmemory",
            "time on chip memory interface — Evaluation::memory_time",
        ),
        (
            "Pattainable",
            "upper bound on SoC performance — Evaluation::attainable",
        ),
    ] {
        rep.line(format!("{param:<12} {desc}"));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gables-fig-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fig1_writes_roofline() {
        let rep = fig1(&tmp()).unwrap();
        assert!(rep.body.contains("ridge"));
        assert_eq!(rep.artifacts.len(), 1);
    }

    #[test]
    fn fig2_shape_close_to_anchors() {
        let rep = fig2(&tmp()).unwrap();
        assert!(rep.max_relative_error() < 0.05, "{rep}");
        assert_eq!(rep.artifacts.len(), 2);
    }

    #[test]
    fn fig3_lists_fabrics() {
        let rep = fig3();
        assert!(rep.body.contains("high-bandwidth fabric"));
        assert!(rep.body.contains("Hexagon DSP scalar"));
    }

    #[test]
    fn fig4_derives_inputs() {
        let rep = fig4();
        assert!(rep.body.contains("derived Gables inputs"));
        assert!(rep.max_relative_error() < 0.05, "{rep}");
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.body.contains("HDR+"));
        assert_eq!(t1.max_relative_error(), 0.0);
        let t2 = table2();
        assert!(t2.body.contains("Pattainable"));
    }
}
