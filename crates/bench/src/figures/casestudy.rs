//! Synthesis case studies tying the substrates together.
//!
//! * [`ipu_case_study`] — Section II's Pixel Visual Core claim: HDR+
//!   "5X faster than the main application processor at one-tenth of the
//!   power", reproduced with the simulator plus the energy model.
//! * [`usecase_bottlenecks`] — every Table I camera usecase pushed
//!   through dataflow → derived Gables inputs → model evaluation on a
//!   camera SoC: which IP binds each usecase and whether it is real-time
//!   feasible.

use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec};
use gables_soc_sim::config::{
    CacheLevel, ComputeEngine, DramConfig, FabricConfig, IpConfig, NumericSupport,
    PatternEfficiency, SocConfig,
};
use gables_soc_sim::energy::{EnergyModel, IpEnergy};
use gables_soc_sim::{Job, RooflineKernel, Simulator};
use gables_usecase::camera_flows::{
    google_lens, hdr_plus, video_capture, video_capture_hfr, video_playback,
};
use gables_usecase::gables::derive_inputs;
use gables_usecase::video::FrameFormat;
use gables_usecase::{Dataflow, Ip};

use crate::report::Report;

/// A two-IP AP + IPU SoC shaped after Section II's Pixel Visual Core
/// description: an 8-core IP "that can perform three trillion operations
/// per second per core", far past what HDR+ actually needs — what matters
/// for the claim is the delivered 5x at one-tenth the power.
fn ap_plus_ipu() -> SocConfig {
    SocConfig {
        name: "ap-plus-ipu".into(),
        ips: vec![
            IpConfig {
                name: "AP".into(),
                engine: ComputeEngine::from_peak_gflops(7.5),
                caches: vec![CacheLevel::new("L2", 2 << 20, 70.0e9)],
                scratchpad: None,
                port_bandwidth: 15.1e9,
                fabric: 0,
                pattern_efficiency: PatternEfficiency::unity(),
                numeric: NumericSupport::FloatAndInt,
            },
            IpConfig {
                // Delivered HDR+ rate: 5x the AP on this kernel.
                name: "IPU".into(),
                engine: ComputeEngine::from_peak_gflops(37.5),
                caches: vec![CacheLevel::new("line buffers", 8 << 20, 400.0e9)],
                scratchpad: None,
                port_bandwidth: 20.0e9,
                fabric: 0,
                pattern_efficiency: PatternEfficiency::unity(),
                numeric: NumericSupport::FloatAndInt,
            },
        ],
        fabrics: vec![FabricConfig {
            name: "fabric".into(),
            bandwidth: 28.0e9,
        }],
        dram: DramConfig {
            peak_bandwidth: 30.0e9,
            efficiency: 0.85,
        },
    }
}

/// Energy model for the AP + IPU pair: the IPU's fixed-function datapaths
/// spend ~1/50 the energy per op, netting one-tenth the *power* at 5x the
/// *speed*.
fn ap_ipu_energy() -> EnergyModel {
    EnergyModel::new(
        vec![
            IpEnergy {
                pj_per_op: 250.0,
                pj_per_byte: 12.0,
            },
            IpEnergy {
                pj_per_op: 3.0,
                pj_per_byte: 6.0,
            },
        ],
        50.0,
        0.05,
    )
    .expect("static coefficients are valid")
}

/// Section II's Pixel Visual Core claim, reproduced end to end.
pub fn ipu_case_study() -> Report {
    let mut rep = Report::new(
        "ipu_case_study",
        "HDR+ on the IPU: 5x faster at one-tenth the power (Section II)",
    );
    let soc = ap_plus_ipu();
    let sim = Simulator::new(soc.clone()).expect("valid config");
    let energy = ap_ipu_energy();

    // The HDR+ merge kernel: a burst of 4K frames at high reuse (the IPU
    // works out of line buffers).
    let kernel = RooflineKernel::dram_resident(512); // I = 64 ops/byte
    let on_ap = sim.run(&[Job { ip: 0, kernel }]).expect("runs");
    let on_ipu = sim.run(&[Job { ip: 1, kernel }]).expect("runs");
    let ap_energy = energy.account(&soc, &on_ap).expect("accounts");
    let ipu_energy = energy.account(&soc, &on_ipu).expect("accounts");

    let speedup = on_ap.jobs[0].seconds / on_ipu.jobs[0].seconds;
    let power_ratio = ipu_energy.average_watts / ap_energy.average_watts;
    rep.row("HDR+ speedup on the IPU (paper: 5x)", 5.0, speedup);
    rep.row(
        "IPU power as a fraction of AP power (paper: 1/10)",
        0.1,
        power_ratio,
    );
    rep.line(format!(
        "AP:  {:.2} GFLOPS/s at {:.2} W;  IPU: {:.2} GFLOPS/s at {:.2} W",
        on_ap.jobs[0].achieved_flops_per_sec / 1e9,
        ap_energy.average_watts,
        on_ipu.jobs[0].achieved_flops_per_sec / 1e9,
        ipu_energy.average_watts
    ));
    rep.line(format!(
        "energy per shot: AP {:.3} J vs IPU {:.3} J ({:.0}x less)",
        ap_energy.total_joules,
        ipu_energy.total_joules,
        ap_energy.total_joules / ipu_energy.total_joules
    ));
    rep
}

/// A ten-IP camera SoC covering every Table I column, for usecase
/// evaluation (units: Gops of usecase work).
fn camera_soc(ips: &[Ip]) -> SocSpec {
    let mut b = SocSpec::builder();
    b.ppeak(OpsPerSec::from_gops(50.0))
        .bpeak(BytesPerSec::from_gbps(30.0));
    for (i, ip) in ips.iter().enumerate() {
        if i == 0 {
            b.cpu(ip.short_name(), BytesPerSec::from_gbps(15.0));
            continue;
        }
        let (a, bw) = match ip {
            Ip::Gpu => (8.0, 24.0),
            Ip::Isp => (10.0, 20.0),
            Ip::Ipu => (40.0, 18.0),
            Ip::Venc | Ip::Vdec => (6.0, 12.0),
            Ip::Jpeg => (4.0, 8.0),
            Ip::G2ds => (3.0, 10.0),
            Ip::Dsp => (2.0, 5.4),
            Ip::Display => (1.0, 8.0),
            _ => (1.0, 4.0),
        };
        b.accelerator(ip.short_name(), a, BytesPerSec::from_gbps(bw))
            .expect("valid");
    }
    b.build().expect("valid")
}

/// Every Table I camera usecase through the full pipeline.
pub fn usecase_bottlenecks() -> Report {
    let mut rep = Report::new(
        "usecase_bottlenecks",
        "Table I usecases: dataflow -> Gables inputs -> bottleneck",
    );
    let flows: Vec<Dataflow> = vec![
        hdr_plus(),
        video_capture(FrameFormat::uhd_4k_yuv420(), 30.0),
        video_capture_hfr(FrameFormat::uhd_4k_yuv420(), 240.0, 5),
        video_playback(),
        google_lens(),
    ];
    rep.line(format!(
        "{:<36} {:>10} {:>12} {:>9} {:>11} {:>18}",
        "usecase", "demand", "attainable", "headroom", "DRAM GB/s", "bottleneck"
    ));
    let mut ordinary_roomy = 0usize;
    let mut hfr_memory_bound = false;
    let mut hfr_headroom = f64::INFINITY;
    for flow in &flows {
        let inputs = derive_inputs(flow).expect("derives");
        let soc = camera_soc(&inputs.ips);
        let eval = evaluate(&soc, &inputs.workload).expect("evaluates");
        let demand = inputs.total_ops_per_sec;
        let headroom = eval.attainable().value() / demand;
        let is_hfr = flow.name.contains("HFR");
        if is_hfr {
            hfr_memory_bound = eval.bottleneck() == gables_model::Bottleneck::Memory;
            hfr_headroom = headroom;
        } else if headroom >= 2.0 {
            ordinary_roomy += 1;
        }
        rep.line(format!(
            "{:<36} {:>7.2} G {:>9.2} G {:>8.1}x {:>11.1} {:>18}",
            flow.name,
            demand / 1e9,
            eval.attainable().to_gops(),
            headroom,
            flow.dram_bytes_per_sec() / 1e9,
            eval.bottleneck().to_string(),
        ));
    }
    // Section II-B's argument: ordinary usecases run with ample headroom,
    // while 4K240 HFR with five reference frames pushes the 30 GB/s
    // memory system to the edge and is the one usecase bound there.
    rep.row(
        "ordinary usecases with >= 2x headroom",
        4.0,
        ordinary_roomy as f64,
    );
    rep.row(
        "4K240 HFR bound by the memory interface",
        1.0,
        f64::from(hfr_memory_bound),
    );
    rep.row(
        "4K240 HFR headroom < 1.5x (on the edge)",
        1.0,
        f64::from(hfr_headroom < 1.5),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipu_claim_reproduces() {
        let rep = ipu_case_study();
        assert!(rep.max_relative_error() < 0.25, "{rep}");
        assert!(rep.body.contains("energy per shot"));
    }

    #[test]
    fn usecase_table_flags_only_hfr() {
        let rep = usecase_bottlenecks();
        assert!(rep.max_relative_error() < 1e-9, "{rep}");
        assert!(rep.body.contains("HFR"));
        assert!(rep.body.contains("memory interface"));
    }
}
