//! Figure 8: performance as work is offloaded from the CPU to the GPU at
//! varying operational intensities, on the simulated Snapdragon-835-like
//! SoC — plus a Gables-model prediction next to the simulator measurement.

use std::path::Path;

use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{SocSpec, Workload};
use gables_plot::{render_line_chart, ChartConfig, Series};
use gables_soc_sim::{presets, MixHarness, Simulator};

use crate::figures::empirical::FigureError;
use crate::report::Report;

/// The intensities plotted in Figure 8 (the paper shows lines from 1 to
/// 1024 ops/byte).
pub const INTENSITIES: [f64; 6] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];

/// The fraction steps: 0 to 1 in increments of 1/8 (the paper's x-axis).
pub const STEPS: usize = 8;

/// Regenerates Figure 8: sweeps `f` for each intensity on the simulator,
/// normalizes to the all-CPU point at intensity 1, and renders the lines.
/// Also evaluates the analytical Gables model at the same points to show
/// model-vs-simulator agreement on the shape.
///
/// # Errors
///
/// Returns [`FigureError`] on simulator or artifact-write failure.
pub fn fig8(out_dir: &Path) -> Result<Report, FigureError> {
    let mut rep = Report::new(
        "fig8",
        "Offload sweep: normalized performance vs f at I in {1..1024}",
    );
    let sim = Simulator::new(presets::snapdragon_835_like())?;
    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    let lines = harness.sweep(&INTENSITIES, STEPS)?;
    let baseline = lines[0][0].flops_per_sec; // f = 0, I = 1

    // Paper anchors: ~39.4x speedup at I = 1024 fully offloaded; low-I
    // offload is a slowdown.
    let high = lines.last().expect("intensities nonempty");
    rep.row(
        "speedup at f=1, I=1024",
        39.4,
        high.last().expect("steps").flops_per_sec / baseline,
    );
    let low_end = lines[0].last().expect("steps").flops_per_sec / baseline;
    rep.line(format!(
        "f=1, I=1 normalized perf: {low_end:.3} (paper: a slowdown, i.e. < 1)"
    ));
    assert!(low_end < 1.0, "low-intensity offload should slow down");

    rep.line("normalized performance (simulator):");
    rep.line(header());
    let mut series = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let mut row = format!("I={:<6}", INTENSITIES[i]);
        let mut pts = Vec::new();
        for p in line {
            let norm = p.flops_per_sec / baseline;
            row.push_str(&format!(" {norm:>8.3}"));
            pts.push((p.f, norm));
        }
        rep.line(row);
        series.push(Series {
            label: format!("I = {}", INTENSITIES[i]),
            points: pts,
        });
    }

    // The analytical model's view of the same sweep (no coordination
    // overhead — Gables is an upper bound).
    let spec = snapdragon_gables_spec();
    rep.line("\nnormalized performance (Gables model upper bound):");
    rep.line(header());
    for &intensity in &INTENSITIES {
        let mut row = format!("I={intensity:<6}");
        for step in 0..=STEPS {
            let f = step as f64 / STEPS as f64;
            let w = Workload::two_ip(f, intensity, intensity).expect("valid");
            let p = gables_model::evaluate(&spec, &w)
                .expect("valid")
                .attainable()
                .to_gops();
            row.push_str(&format!(" {:>8.3}", p / 7.5));
        }
        rep.line(row);
    }
    rep.line("(model bounds the simulator from above; both agree on who wins where)");

    let svg = render_line_chart(
        &ChartConfig {
            y_log: true,
            ..ChartConfig::linear(
                "Figure 8: offload sweep",
                "fraction of work at GPU (f)",
                "performance normalized to f=0, I=1",
            )
        },
        &series,
        &[],
    );
    let mut rep2 = rep;
    rep2.artifact(out_dir, "fig8_offload_sweep.svg", &svg)?;
    Ok(rep2)
}

fn header() -> String {
    let mut h = String::from("        ");
    for step in 0..=STEPS {
        h.push_str(&format!(" f={:<6.3}", step as f64 / STEPS as f64));
    }
    h
}

/// The Snapdragon-835-like SoC expressed as a Gables hardware spec, using
/// the paper's measured ceilings (Ppeak = 7.5 Gops/s, A1 = 46.6, B0 =
/// 15.1 GB/s, B1 = 24.4 GB/s, Bpeak = 25.5 GB/s sustained).
pub fn snapdragon_gables_spec() -> SocSpec {
    SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(7.5))
        .bpeak(BytesPerSec::from_gbps(25.5))
        .cpu("Kryo CPU", BytesPerSec::from_gbps(15.1))
        .accelerator("Adreno 540 GPU", 349.6 / 7.5, BytesPerSec::from_gbps(24.4))
        .expect("positive acceleration")
        .build()
        .expect("valid spec")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_paper() {
        let dir = std::env::temp_dir().join(format!("gables-fig8-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rep = fig8(&dir).unwrap();
        // The 39.4x anchor within 5%.
        assert!(rep.max_relative_error() < 0.05, "{rep}");
        assert!(rep.body.contains("slowdown"));
        assert_eq!(rep.artifacts.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_bounds_simulator_from_above() {
        // At every (f, I) grid point the analytical model's Pattainable is
        // an upper bound on the simulator's measured throughput.
        let sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
        let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
        let spec = snapdragon_gables_spec();
        for &intensity in &[1.0, 64.0, 1024.0] {
            let kernel = harness.kernel_at_intensity(intensity).unwrap();
            for step in 0..=4 {
                let f = step as f64 / 4.0;
                let measured = harness.run(kernel, f).unwrap().flops_per_sec / 1e9;
                let w = Workload::two_ip(f, intensity, intensity).unwrap();
                let bound = gables_model::evaluate(&spec, &w)
                    .unwrap()
                    .attainable()
                    .to_gops();
                assert!(
                    measured <= bound * 1.02,
                    "f={f} I={intensity}: measured {measured} above bound {bound}"
                );
            }
        }
    }
}
