//! Ablation studies of the reproduction's own design choices (DESIGN.md)
//! plus the paper's cross-platform claim.
//!
//! * [`ablation_arbiter`] — max-min vs proportional DRAM arbitration on
//!   the Figure 8 experiment (does the conclusion depend on the arbiter?).
//! * [`ablation_thermal`] — the thermal chamber assumption: what the
//!   Figure 7a CPU ceiling would look like without it.
//! * [`soc_821`] — the Snapdragon-821-like preset: "our findings hold
//!   true for both systems" (Section IV-A).
//! * [`energy_budget`] — the 3 W TDP motivation of Section I, accounted
//!   on simulator runs.
//! * [`measured_miss_ratios`] — Section V-A's `mi` measured from traces
//!   with the 3C cache simulator instead of assumed.

use gables_ert::{measure, SweepConfig};
use gables_model::ext::sram::MemorySideSram;
use gables_model::two_ip::TwoIpModel;
use gables_model::units::MissRatio;
use gables_soc_sim::cache_sim::{measure_miss_ratio, CacheConfig};
use gables_soc_sim::energy::EnergyModel;
use gables_soc_sim::thermal::ThermalConfig;
use gables_soc_sim::trace::TracePattern;
use gables_soc_sim::{presets, ArbiterPolicy, Job, MixHarness, RooflineKernel, Simulator};

use crate::report::Report;

/// Arbiter-policy ablation: the Figure 8 endpoints under max-min vs
/// proportional DRAM sharing.
pub fn ablation_arbiter() -> Report {
    let mut rep = Report::new(
        "ablation_arbiter",
        "DRAM arbitration policy ablation on the Figure 8 sweep",
    );
    rep.line("policy        f     I     normalized perf");
    let mut endpoints = Vec::new();
    for (name, policy) in [
        ("maxmin", ArbiterPolicy::MaxMin),
        ("proportional", ArbiterPolicy::Proportional),
    ] {
        let sim = Simulator::new(presets::snapdragon_835_like())
            .expect("valid preset")
            .with_policy(policy);
        let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
        let k1 = harness.kernel_at_intensity(1.0).expect("representable");
        let k1024 = harness.kernel_at_intensity(1024.0).expect("representable");
        let base = harness.run(k1, 0.0).expect("runs").flops_per_sec;
        for (kernel, intensity, f) in [(k1, 1.0, 0.5), (k1, 1.0, 1.0), (k1024, 1024.0, 1.0)] {
            let p = harness.run(kernel, f).expect("runs").flops_per_sec / base;
            rep.line(format!("{name:<12} {f:<5} {intensity:<5} {p:>10.3}"));
            endpoints.push((name, intensity, f, p));
        }
    }
    // The headline conclusions are arbiter-invariant: high-I offload wins
    // big under both policies, low-I full offload loses under both.
    let speedup = |name: &str, i: f64, f: f64| {
        endpoints
            .iter()
            .find(|(n, ii, ff, _)| *n == name && *ii == i && *ff == f)
            .map(|(_, _, _, p)| *p)
            .expect("endpoint recorded")
    };
    rep.row(
        "I=1024 f=1 speedup ratio (prop/maxmin)",
        1.0,
        speedup("proportional", 1024.0, 1.0) / speedup("maxmin", 1024.0, 1.0),
    );
    rep.line(format!(
        "low-I slowdown holds under both policies: maxmin {:.3}, proportional {:.3}",
        speedup("maxmin", 1.0, 1.0),
        speedup("proportional", 1.0, 1.0)
    ));
    rep
}

/// Thermal ablation: the sustained CPU ceiling with and without the
/// paper's thermal chamber.
pub fn ablation_thermal() -> Report {
    let mut rep = Report::new(
        "ablation_thermal",
        "Why the paper benchmarks in a thermal chamber",
    );
    let long = RooflineKernel {
        trials: 400,
        ..RooflineKernel::dram_resident(1024)
    };
    let chamber = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let cool = chamber
        .run(&[Job {
            ip: presets::CPU,
            kernel: long,
        }])
        .expect("runs");
    let phone = Simulator::new(presets::snapdragon_835_like())
        .expect("valid preset")
        .with_thermal(ThermalConfig::phone_default());
    let hot = phone
        .run(&[Job {
            ip: presets::CPU,
            kernel: long,
        }])
        .expect("runs");
    rep.row(
        "chamber: sustained CPU GFLOPS/s",
        7.5,
        cool.jobs[0].achieved_flops_per_sec / 1e9,
    );
    rep.line(format!(
        "throttled: sustained {:.2} GFLOPS/s at peak junction {:.1} C",
        hot.jobs[0].achieved_flops_per_sec / 1e9,
        hot.peak_temperature_c.expect("thermal model on")
    ));
    rep.line("without thermal control the measured 'roofline' would be a moving target —");
    rep.line("the paper's methodology note reproduced mechanically.");
    rep
}

/// The Snapdragon-821-like preset: same qualitative findings (Section
/// IV-A's "our findings hold true for both systems").
pub fn soc_821() -> Report {
    let mut rep = Report::new("soc_821", "Cross-check on the Snapdragon-821-like preset");
    let sim = Simulator::new(presets::snapdragon_821_like()).expect("valid preset");
    let cpu = measure(&sim, presets::CPU, &SweepConfig::cpu_default()).expect("sweeps");
    let gpu = measure(&sim, presets::GPU, &SweepConfig::gpu_default()).expect("sweeps");
    let dsp = measure(&sim, presets::DSP, &SweepConfig::cpu_default()).expect("sweeps");
    rep.line(format!("CPU: {cpu}"));
    rep.line(format!("GPU: {gpu}"));
    rep.line(format!("DSP: {dsp}"));

    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    let k1 = harness.kernel_at_intensity(1.0).expect("representable");
    let k1024 = harness.kernel_at_intensity(1024.0).expect("representable");
    let base = harness.run(k1, 0.0).expect("runs").flops_per_sec;
    let low = harness.run(k1, 1.0).expect("runs").flops_per_sec / base;
    let high = harness.run(k1024, 1.0).expect("runs").flops_per_sec / base;
    rep.line(format!(
        "mixing endpoints: I=1 f=1 -> {low:.3}x, I=1024 f=1 -> {high:.1}x"
    ));
    // The qualitative findings, encoded as anchors of 1.0 = "holds".
    rep.row(
        "821: GPU >> CPU peak",
        1.0,
        f64::from(gpu.peak_gflops > 10.0 * cpu.peak_gflops),
    );
    rep.row(
        "821: DSP on slow fabric (< CPU bw)",
        1.0,
        f64::from(dsp.dram_gbps < cpu.dram_gbps),
    );
    rep.row("821: low-I offload slows down", 1.0, f64::from(low < 1.0));
    rep.row(
        "821: high-I offload speeds up >10x",
        1.0,
        f64::from(high > 10.0),
    );
    rep
}

/// Energy accounting under the 3 W thermal design point the paper's
/// introduction motivates.
pub fn energy_budget() -> Report {
    let mut rep = Report::new(
        "energy_budget",
        "Energy/TDP accounting (Section I motivation)",
    );
    let soc = presets::snapdragon_835_like();
    let sim = Simulator::new(soc.clone()).expect("valid preset");
    let model = EnergyModel::snapdragon_835_like();
    rep.line("workload                      GFLOPS/s     watts  ops/nJ   fits 3 W?");
    let mut cpu_eff = 0.0;
    let mut gpu_eff = 0.0;
    for (name, ip, fpw) in [
        ("CPU scalar FP (I=128)", presets::CPU, 1024u32),
        ("GPU stream FP (I=128)", presets::GPU, 1024),
        ("DSP scalar FP (I=128)", presets::DSP, 1024),
        ("CPU streaming (I=0.125)", presets::CPU, 1),
    ] {
        let kernel = if ip == presets::GPU {
            RooflineKernel {
                pattern: gables_soc_sim::TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(fpw)
            }
        } else {
            RooflineKernel::dram_resident(fpw)
        };
        let run = sim.run(&[Job { ip, kernel }]).expect("runs");
        let report = model.account(&soc, &run).expect("accounts");
        if name.starts_with("CPU scalar") {
            cpu_eff = report.ops_per_joule;
        }
        if name.starts_with("GPU") {
            gpu_eff = report.ops_per_joule;
        }
        rep.line(format!(
            "{name:<28} {:>9.1} {:>9.2} {:>7.2}   {}",
            run.jobs[0].achieved_flops_per_sec / 1e9,
            report.average_watts,
            report.ops_per_joule / 1e9,
            if report.within_tdp(3.0) { "yes" } else { "NO" }
        ));
    }
    // Section II: IPs deliver "an order of magnitude improvement in
    // performance and power efficiency" vs the AP.
    rep.row(
        "GPU/CPU efficiency ratio (order of magnitude)",
        10.0,
        gpu_eff / cpu_eff,
    );
    rep
}

/// Section V-A `mi` measured from reference traces via the 3C cache
/// simulator, then fed into the SRAM extension on Figure 6b.
pub fn measured_miss_ratios() -> Report {
    let mut rep = Report::new(
        "measured_miss_ratios",
        "SRAM-extension miss ratios measured with the 3C cache model",
    );
    let sram = CacheConfig {
        capacity_bytes: 512 << 10,
        line_bytes: 64,
        associativity: 16,
    };
    rep.line("pattern                               measured mi   Fig6b Pattainable");
    let model = TwoIpModel::figure_6b();
    let soc = model.soc().expect("valid");
    let w = model.workload().expect("valid");
    let mut rescued = 0.0;
    for (name, pattern) in [
        (
            "stream 8 MiB x2 (no reuse)",
            TracePattern::Stream {
                bytes: 8 << 20,
                stride: 64,
                passes: 2,
                write_back: false,
            },
        ),
        (
            "tiled 4 MiB, 128 KiB tiles, 7x reuse",
            TracePattern::Tiled {
                bytes: 4 << 20,
                tile_bytes: 128 << 10,
                stride: 64,
                reuse: 7,
            },
        ),
        (
            "random chase 8 MiB",
            TracePattern::RandomChase {
                bytes: 8 << 20,
                stride: 64,
                count: 100_000,
            },
        ),
    ] {
        let mi = measure_miss_ratio(sram, &pattern).expect("valid geometry");
        let ext = MemorySideSram::new(vec![MissRatio::CERTAIN, mi]);
        let p = ext
            .evaluate(&soc, &w)
            .expect("valid")
            .attainable()
            .to_gops();
        if name.starts_with("tiled") {
            rescued = p;
        }
        rep.line(format!("{name:<38} {:>10.4} {:>14.4}", mi.value(), p));
    }
    rep.row("tiled reuse rescues Fig 6b to the IP bound", 2.0, rescued);
    rep.line("streaming and random patterns cannot use the added capacity —");
    rep.line("the paper's fourth conjecture ('adding more IP-local memory even when");
    rep.line("important usecases don't/can't use the added capacity') made measurable.");
    rep
}

/// Cross-checks the engine's working-set-threshold cache model against
/// the trace-driven multi-level hierarchy on the streaming kernel —
/// the regime where the threshold model claims to be exact.
pub fn cache_fidelity() -> Report {
    use gables_soc_sim::cache_sim::CacheConfig;
    use gables_soc_sim::hierarchy::HierarchySim;

    let mut rep = Report::new(
        "cache_fidelity",
        "Threshold cache model vs trace-driven hierarchy",
    );
    let soc = presets::snapdragon_835_like();
    let cpu = &soc.ips[presets::CPU];
    let levels: Vec<(String, CacheConfig)> = cpu
        .caches
        .iter()
        .map(|c| {
            (
                c.name.clone(),
                CacheConfig {
                    capacity_bytes: c.capacity_bytes,
                    line_bytes: 64,
                    associativity: 16,
                },
            )
        })
        .collect();

    rep.line("working set  threshold-model level  steady-state DRAM fraction (trace)");
    for (ws, expect_dram_fraction) in [(64u64 << 10, 0.0), (1 << 20, 0.0), (8 << 20, 1.0)] {
        let serving = cpu
            .serving_cache(ws)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| "DRAM".into());
        // Warm the hierarchy with one pass, then measure a steady pass.
        let mut h = HierarchySim::new(levels.clone(), 64).expect("valid geometry");
        let pass = TracePattern::Stream {
            bytes: ws,
            stride: 64,
            passes: 1,
            write_back: false,
        }
        .generate();
        h.run_trace(&pass);
        let steady = h.run_trace(&pass);
        let fraction = steady.dram_bytes / (ws as f64);
        rep.line(format!("{ws:>11}  {serving:>20}  {fraction:>10.4}"));
        rep.row(
            format!("steady DRAM fraction at ws={ws}"),
            expect_dram_fraction,
            fraction,
        );
    }
    rep.line("the threshold model's serving-level prediction matches the trace-driven");
    rep.line("hierarchy in both regimes, validating the fast tier the engine uses.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_fidelity_tiers_agree() {
        let rep = cache_fidelity();
        assert!(rep.max_relative_error() < 0.01, "{rep}");
        assert!(rep.body.contains("L2"));
    }

    #[test]
    fn arbiter_conclusions_are_policy_invariant() {
        let rep = ablation_arbiter();
        assert!(rep.max_relative_error() < 0.25, "{rep}");
        assert!(rep.body.contains("maxmin"));
        assert!(rep.body.contains("proportional"));
    }

    #[test]
    fn thermal_ablation_shows_throttling() {
        let rep = ablation_thermal();
        assert!(rep.max_relative_error() < 0.01, "{rep}");
        assert!(rep.body.contains("throttled"));
    }

    #[test]
    fn findings_hold_on_the_821() {
        let rep = soc_821();
        assert!(rep.max_relative_error() < 1e-9, "{rep}");
    }

    #[test]
    fn energy_budget_shows_efficiency_gap() {
        let rep = energy_budget();
        // GPU/CPU efficiency within 2x of "an order of magnitude".
        assert!(rep.max_relative_error() < 1.0, "{rep}");
        assert!(rep.body.contains("fits 3 W?"));
    }

    #[test]
    fn miss_ratio_study_rescues_with_reuse_only() {
        let rep = measured_miss_ratios();
        assert!(rep.max_relative_error() < 0.01, "{rep}");
        assert!(rep.body.contains("tiled"));
    }
}
