//! One module per paper table/figure; each produces a [`Report`] with a
//! paper-anchor-vs-measured comparison.
//!
//! [`Report`]: crate::report::Report

pub mod ablation;
pub mod background;
pub mod casestudy;
pub mod empirical;
pub mod extensions;
pub mod fig6;
pub mod fig8;
