//! Figures 7 and 9: empirically derived rooflines for the CPU, GPU, and
//! DSP via the ERT sweep on the simulated Snapdragon-835-like SoC.

use std::path::Path;

use gables_ert::{fit, sweep, SweepConfig};
use gables_plot::render_roofline;
use gables_soc_sim::{presets, SimError, Simulator};

use crate::report::Report;

/// A figure-regeneration error: simulator failure or I/O failure.
#[derive(Debug)]
pub enum FigureError {
    /// The simulator rejected a configuration or kernel.
    Sim(SimError),
    /// Writing an artifact failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FigureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FigureError::Sim(e) => write!(f, "simulation failed: {e}"),
            FigureError::Io(e) => write!(f, "artifact write failed: {e}"),
        }
    }
}

impl std::error::Error for FigureError {}

impl From<SimError> for FigureError {
    fn from(e: SimError) -> Self {
        FigureError::Sim(e)
    }
}

impl From<std::io::Error> for FigureError {
    fn from(e: std::io::Error) -> Self {
        FigureError::Io(e)
    }
}

/// Figure 7: CPU (7a) and GPU (7b) rooflines. Paper anchors: CPU 7.5
/// GFLOPS/s & 15.1 GB/s; GPU 349.6 GFLOPS/s & 24.4 GB/s; plus footnote
/// 3's ~20 GB/s read-only CPU sweep.
///
/// # Errors
///
/// Returns [`FigureError`] on simulator or artifact-write failure.
pub fn fig7(out_dir: &Path) -> Result<Report, FigureError> {
    let mut rep = Report::new("fig7", "Empirical CPU and GPU rooflines (ERT sweep)");
    let sim = Simulator::new(presets::snapdragon_835_like())?;

    let cpu_points = sweep(&sim, presets::CPU, &SweepConfig::cpu_default())?;
    let cpu = fit(&cpu_points);
    rep.row("7a: CPU peak (GFLOPS/s)", 7.5, cpu.peak_gflops);
    rep.row("7a: CPU DRAM (GB/s)", 15.1, cpu.dram_gbps);
    rep.line(format!("CPU: {cpu}"));

    let read_only = fit(&sweep(&sim, presets::CPU, &SweepConfig::read_only())?);
    rep.row(
        "7a fn3: CPU read-only DRAM (GB/s)",
        20.0,
        read_only.dram_gbps,
    );

    let gpu_points = sweep(&sim, presets::GPU, &SweepConfig::gpu_default())?;
    let gpu = fit(&gpu_points);
    rep.row("7b: GPU peak (GFLOPS/s)", 349.6, gpu.peak_gflops);
    rep.row("7b: GPU DRAM (GB/s)", 24.4, gpu.dram_gbps);
    rep.row(
        "IV-B: GPU acceleration A1 vs CPU",
        46.6,
        gpu.peak_gflops / cpu.peak_gflops,
    );
    rep.line(format!("GPU: {gpu}"));

    // Section IV-B's aside: with NEON vectorization the CPU exceeds 40
    // GFLOP/s (not shown in the paper's figures) and the GPU's 47x
    // "diminishes down to less than an order of magnitude".
    let neon = Simulator::new(presets::snapdragon_835_like_neon())?;
    let neon_cpu = fit(&sweep(&neon, presets::CPU, &SweepConfig::cpu_default())?);
    rep.line(format!(
        "NEON CPU (not shown in paper): {:.1} GFLOPS/s peak -> vectorized A1 = {:.1}x (< 10x)",
        neon_cpu.peak_gflops,
        gpu.peak_gflops / neon_cpu.peak_gflops
    ));
    rep.row(
        "IV-B: NEON CPU exceeds 40 GFLOPS/s",
        1.0,
        f64::from(neon_cpu.peak_gflops > 40.0),
    );
    rep.row(
        "IV-B: vectorized acceleration < 10x",
        1.0,
        f64::from(gpu.peak_gflops / neon_cpu.peak_gflops < 10.0),
    );

    let cpu_svg = render_roofline(
        &cpu.to_roofline().expect("fitted ceilings are positive"),
        "Figure 7a: CPU roofline",
        0.01,
        100.0,
    );
    rep.artifact(out_dir, "fig7a_cpu_roofline.svg", &cpu_svg)?;
    let gpu_svg = render_roofline(
        &gpu.to_roofline().expect("fitted ceilings are positive"),
        "Figure 7b: GPU roofline",
        0.01,
        100.0,
    );
    rep.artifact(out_dir, "fig7b_gpu_roofline.svg", &gpu_svg)?;
    Ok(rep)
}

/// Figure 9: the Hexagon DSP scalar-unit roofline. Paper anchors: 3.0
/// GFLOPS/s (of a 3.6 spec maximum) and the figure's 5.4 GB/s DRAM leg.
/// The body text says 12.5 GB/s — see EXPERIMENTS.md for the discrepancy
/// note; we follow the figure.
///
/// # Errors
///
/// Returns [`FigureError`] on simulator or artifact-write failure.
pub fn fig9(out_dir: &Path) -> Result<Report, FigureError> {
    let mut rep = Report::new("fig9", "DSP scalar-unit roofline (ERT sweep)");
    let sim = Simulator::new(presets::snapdragon_835_like())?;
    let points = sweep(&sim, presets::DSP, &SweepConfig::cpu_default())?;
    let dsp = fit(&points);
    rep.row("9: DSP scalar peak (GFLOPS/s)", 3.0, dsp.peak_gflops);
    rep.row("9: DSP DRAM (GB/s, figure label)", 5.4, dsp.dram_gbps);
    rep.row("9: spec maximum (GFLOPS/s)", 3.6, 3.68 * 1.0); // 4 threads x 920 MHz
    rep.line(format!("DSP: {dsp}"));
    rep.line("note: paper body text says 12.5 GB/s; figure axis says 5.4 GB/s — figure followed");
    let svg = render_roofline(
        &dsp.to_roofline().expect("fitted ceilings are positive"),
        "Figure 9: DSP scalar roofline",
        0.01,
        100.0,
    );
    rep.artifact(out_dir, "fig9_dsp_roofline.svg", &svg)?;
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gables-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fig7_matches_paper_ceilings() {
        let dir = tmp("fig7");
        let rep = fig7(&dir).unwrap();
        assert!(rep.max_relative_error() < 0.03, "{rep}");
        assert_eq!(rep.artifacts.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig9_matches_paper_ceilings() {
        let dir = tmp("fig9");
        let rep = fig9(&dir).unwrap();
        assert!(rep.max_relative_error() < 0.03, "{rep}");
        assert!(rep.body.contains("12.5 GB/s"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
