//! Section V extension studies: memory-side SRAM (V-A), detailed
//! interconnect (V-B), and serialized work vs MultiAmdahl (V-C).

use gables_model::baselines::multiamdahl::{MultiAmdahl, PerfFn, Task};
use gables_model::ext::interconnect::{Bus, BusTopology};
use gables_model::ext::serialized::evaluate_serialized;
use gables_model::ext::sram::MemorySideSram;
use gables_model::two_ip::TwoIpModel;
use gables_model::units::{BytesPerSec, MissRatio};

use crate::report::Report;

/// Section V-A: sweeping the memory-side SRAM miss ratio on the Figure 6b
/// scenario, showing the extension rescuing a memory-bound design without
/// touching `Bpeak`.
pub fn ext_sram() -> Report {
    let mut rep = Report::new("ext_sram", "Memory-side SRAM extension (Section V-A)");
    let m = TwoIpModel::figure_6b();
    let soc = m.soc().expect("valid");
    let w = m.workload().expect("valid");
    let base = gables_model::evaluate(&soc, &w)
        .expect("valid")
        .attainable()
        .to_gops();
    rep.row("base Figure 6b Pattainable (Gops/s)", 1.3278, base);
    rep.line("GPU miss ratio m1 sweep (m0 = 1):");
    rep.line("  m1     Pattainable  bottleneck");
    for m1 in [1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.0] {
        let ext = MemorySideSram::new(vec![
            MissRatio::CERTAIN,
            MissRatio::new(m1).expect("in range"),
        ]);
        let eval = ext.evaluate(&soc, &w).expect("valid");
        rep.line(format!(
            "  {m1:<5}  {:>11.4}  {}",
            eval.attainable().to_gops(),
            eval.bottleneck()
        ));
    }
    // With m1 = 0 the GPU's own port binds at 2 Gops/s: the SRAM converts
    // the Figure 6b memory bottleneck into the Figure 6c IP bottleneck.
    let perfect = MemorySideSram::new(vec![MissRatio::CERTAIN, MissRatio::NEVER])
        .evaluate(&soc, &w)
        .expect("valid");
    rep.row(
        "perfect-reuse Pattainable (= Fig 6c bound)",
        2.0,
        perfect.attainable().to_gops(),
    );
    rep
}

/// Section V-B: the Figure 6d SoC behind a bus topology, showing a shared
/// bus becoming the new bottleneck as it narrows.
pub fn ext_interconnect() -> Report {
    let mut rep = Report::new(
        "ext_interconnect",
        "Detailed interconnect extension (Section V-B)",
    );
    let m = TwoIpModel::figure_6d();
    let soc = m.soc().expect("valid");
    let w = m.workload().expect("valid");
    rep.row(
        "base Figure 6d Pattainable (Gops/s)",
        160.0,
        gables_model::evaluate(&soc, &w)
            .expect("valid")
            .attainable()
            .to_gops(),
    );
    rep.line("shared-bus bandwidth sweep (both IPs route over one bus):");
    rep.line("  bus GB/s  Pattainable  bottleneck");
    for gbps in [40.0, 20.0, 10.0, 5.0, 2.0, 1.0] {
        let topology = BusTopology::builder()
            .bus(Bus::new("shared", BytesPerSec::from_gbps(gbps)).expect("positive"))
            .route(0, &[0])
            .route(1, &[0])
            .build(2)
            .expect("valid");
        let eval = topology.evaluate(&soc, &w).expect("valid");
        rep.line(format!(
            "  {gbps:<8}  {:>11.4}  {}",
            eval.attainable().to_gops(),
            eval.bottleneck()
        ));
    }
    // Total data/op = 0.125 B, so a 20 GB/s bus sustains exactly the
    // balanced 160 Gops/s and anything narrower binds.
    let knee = BusTopology::builder()
        .bus(Bus::new("shared", BytesPerSec::from_gbps(20.0)).expect("positive"))
        .route(0, &[0])
        .route(1, &[0])
        .build(2)
        .expect("valid");
    rep.row(
        "bus knee: Pattainable at 20 GB/s shared bus",
        160.0,
        knee.evaluate(&soc, &w)
            .expect("valid")
            .attainable()
            .to_gops(),
    );
    rep
}

/// Section V-C: serialized/exclusive work vs base (concurrent) Gables and
/// vs MultiAmdahl's compute-only view.
pub fn ext_serialized() -> Report {
    let mut rep = Report::new(
        "ext_serialized",
        "Serialized work extension vs MultiAmdahl (Section V-C / VI)",
    );
    rep.line("scenario        concurrent  serialized  ratio");
    for (name, m, _) in TwoIpModel::figure_6_progression() {
        let soc = m.soc().expect("valid");
        let w = m.workload().expect("valid");
        let conc = gables_model::evaluate(&soc, &w)
            .expect("valid")
            .attainable()
            .to_gops();
        let serial = evaluate_serialized(&soc, &w)
            .expect("valid")
            .attainable()
            .to_gops();
        rep.line(format!(
            "figure {name:<8} {conc:>10.4}  {serial:>10.4}  {:>5.2}",
            conc / serial
        ));
    }
    // Figure 6d serialized by hand: T'0 = C0 = 0.25/40, T'1 = D1/B1 =
    // 0.09375/15 => P = 1/(6.25e-3 + 6.25e-3) = 80 Gops/s.
    let m = TwoIpModel::figure_6d();
    let serial = evaluate_serialized(&m.soc().expect("valid"), &m.workload().expect("valid"))
        .expect("valid");
    rep.row(
        "6d serialized Pattainable (hand calc 80)",
        80.0,
        serial.attainable().to_gops(),
    );

    // MultiAmdahl ignores bandwidth: with Figure 6d fractions and compute
    // peaks (40, 200 Gops/s) it predicts 1/(0.25/40 + 0.75/200) = 100.
    let problem = MultiAmdahl::new(vec![
        Task {
            work_fraction: 0.25,
            perf: PerfFn::Linear { k: 40.0 },
        },
        Task {
            work_fraction: 0.75,
            perf: PerfFn::Linear { k: 200.0 },
        },
    ])
    .expect("valid");
    let t = problem.execution_time(&[1.0, 1.0]).expect("valid");
    rep.row("6d MultiAmdahl (compute only, Gops/s)", 100.0, 1.0 / t);
    rep.line("MultiAmdahl over-predicts because it models no bandwidth bounds —");
    rep.line("the key difference the paper identifies in Section VI.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_report_shows_rescue_to_ip_bound() {
        let rep = ext_sram();
        assert!(rep.max_relative_error() < 1e-3, "{rep}");
        assert!(rep.body.contains("IP[1]"));
    }

    #[test]
    fn interconnect_report_shows_bus_knee() {
        let rep = ext_interconnect();
        assert!(rep.max_relative_error() < 1e-9, "{rep}");
        assert!(rep.body.contains("bus[0]"));
    }

    #[test]
    fn serialized_report_matches_hand_calcs() {
        let rep = ext_serialized();
        assert!(rep.max_relative_error() < 1e-9, "{rep}");
        assert!(rep.body.contains("MultiAmdahl"));
    }
}
