//! # gables-bench
//!
//! The benchmark harness of the Gables reproduction: one regeneration
//! target per paper table and figure (see DESIGN.md's per-experiment
//! index) plus the [`microbench`]-driven timing benches under
//! `benches/`.
//!
//! Run everything with `cargo run -p gables-bench --bin all_figures`;
//! individual figures have their own binaries (`fig1` … `fig9`,
//! `table1`, `table2`, `ext_*`). Artifacts land in `target/figures/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod microbench;
pub mod report;

use std::path::Path;

use report::Report;

/// Runs every regeneration target, in paper order.
///
/// # Errors
///
/// Returns the first failure as a boxed error (simulator failures and
/// artifact I/O failures).
pub fn all_reports(out_dir: &Path) -> Result<Vec<Report>, Box<dyn std::error::Error>> {
    Ok(vec![
        figures::background::fig1(out_dir)?,
        figures::background::fig2(out_dir)?,
        figures::background::fig3(),
        figures::background::fig4(),
        figures::background::table1(),
        figures::background::table2(),
        figures::fig6::fig6(out_dir)?,
        figures::empirical::fig7(out_dir)?,
        figures::fig8::fig8(out_dir)?,
        figures::empirical::fig9(out_dir)?,
        figures::extensions::ext_sram(),
        figures::extensions::ext_interconnect(),
        figures::extensions::ext_serialized(),
        figures::ablation::ablation_arbiter(),
        figures::ablation::ablation_thermal(),
        figures::ablation::soc_821(),
        figures::ablation::energy_budget(),
        figures::ablation::measured_miss_ratios(),
        figures::ablation::cache_fidelity(),
        figures::casestudy::ipu_case_study(),
        figures::casestudy::usecase_bottlenecks(),
    ])
}

/// The accepted relative-error tolerance for a report's anchored rows:
/// 5% for numbers the paper prints, looser where the paper's own claim is
/// order-of-magnitude ("10x more efficient") or where the row compares
/// policies rather than paper values.
pub fn report_tolerance(id: &str) -> f64 {
    match id {
        "energy_budget" => 1.0,     // "order of magnitude" claim
        "ablation_arbiter" => 0.25, // cross-policy ratio, not a paper value
        "ipu_case_study" => 0.25,   // "5x" and "one-tenth" are round claims
        _ => 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reports_regenerate_every_experiment() {
        let dir = std::env::temp_dir().join(format!("gables-all-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let reports = all_reports(&dir).unwrap();
        assert_eq!(reports.len(), 21);
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        for id in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ext_sram",
            "ext_interconnect",
            "ext_serialized",
            "ablation_arbiter",
            "ablation_thermal",
            "soc_821",
            "energy_budget",
            "measured_miss_ratios",
            "cache_fidelity",
            "ipu_case_study",
            "usecase_bottlenecks",
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
        // Every anchored comparison lands within tolerance of the paper:
        // 5% for paper-printed numbers, looser for order-of-magnitude
        // claims (energy efficiency) and policy ablations.
        for r in &reports {
            let tol = report_tolerance(&r.id);
            assert!(
                r.max_relative_error() < tol,
                "{}: err {:.3} > tol {tol}\n{r}",
                r.id,
                r.max_relative_error()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
