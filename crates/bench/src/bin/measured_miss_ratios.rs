//! Regenerates one experiment; see DESIGN.md's per-experiment index.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        gables_bench::figures::ablation::measured_miss_ratios()
    );
    Ok(())
}
