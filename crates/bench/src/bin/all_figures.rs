//! Regenerates every table and figure of the paper; artifacts land in
//! `target/figures/`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = gables_bench::report::default_out_dir();
    for report in gables_bench::all_reports(&out)? {
        println!("{report}");
    }
    Ok(())
}
