//! Regenerates one experiment; see DESIGN.md's per-experiment index.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = gables_bench::report::default_out_dir();
    let _ = &out;
    println!("{}", gables_bench::figures::background::fig3());
    Ok(())
}
