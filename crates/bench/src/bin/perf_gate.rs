//! Compares a fresh benchmark trajectory run against the committed
//! baselines at the repository root and fails on regression.
//!
//! For every metric in every `BENCH_{eval,sweep,serve,parallel,carm}.json`
//! pair it prints one delta line (`bench.metric  baseline  current
//! delta%`) and exits non-zero if any metric regressed by more than
//! [`REGRESSION_RATIO`] *and* more than [`ABSOLUTE_SLACK_NS`] — the
//! absolute floor keeps sub-microsecond jitter from failing the gate.
//! Metrics named `*_allocs` are allocation counts, not times: they are
//! judged with zero tolerance (no calibration scaling, no slack — any
//! increase over the baseline fails), because allocation counts are
//! deterministic where timings are noisy.
//! `--update` copies the candidate artifacts over the baselines instead
//! of judging them (re-baselining after an accepted perf change).
//!
//! Baselines are compared after *machine-speed normalization*: every
//! artifact records `calibration_ns`, the time of a fixed pure-CPU
//! spin, and the baseline scales by the candidate/baseline calibration
//! ratio before judging. A shared machine's CPU-steal episode (or a
//! different machine) moves the calibration and the metrics together
//! and cancels out; a code regression moves the metrics alone and
//! still fails the gate.
//!
//! Usage: `perf_gate [--update] [--baseline DIR] [--candidate DIR]`
//! (defaults: baseline `.`, candidate `$GABLES_BENCH_TRAJECTORY_DIR`
//! or `target/trajectory`). Baselines and candidates must have been
//! produced at the same `GABLES_BENCH_SCALE`; the gate refuses to
//! compare across scales.

use std::process::ExitCode;

use gables_model::json::Json;

/// A metric fails only above `baseline * REGRESSION_RATIO` ...
const REGRESSION_RATIO: f64 = 1.15;
/// ... and only when the absolute growth also exceeds this many ns.
const ABSOLUTE_SLACK_NS: f64 = 25_000.0;

const BENCHES: [&str; 5] = ["eval", "sweep", "serve", "parallel", "carm"];

struct Doc {
    scale: f64,
    calibration: f64,
    metrics: Vec<(String, f64)>,
}

fn load(path: &str) -> Result<Doc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let scale = doc
        .get("gables_bench_scale")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing gables_bench_scale"))?;
    let calibration = doc
        .get("calibration_ns")
        .and_then(Json::as_f64)
        .filter(|c| c.is_finite() && *c > 0.0)
        .ok_or_else(|| format!("{path}: missing calibration_ns"))?;
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_object)
        .ok_or_else(|| format!("{path}: missing metrics object"))?
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|x| (k.clone(), x))
                .ok_or_else(|| format!("{path}: metric {k} is not a number"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if metrics.is_empty() {
        return Err(format!("{path}: empty metrics object"));
    }
    Ok(Doc {
        scale,
        calibration,
        metrics,
    })
}

fn run() -> Result<bool, String> {
    let mut update = false;
    let mut baseline_dir = ".".to_string();
    let mut candidate_dir = std::env::var("GABLES_BENCH_TRAJECTORY_DIR")
        .unwrap_or_else(|_| "target/trajectory".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--baseline" => {
                baseline_dir = args.next().ok_or("--baseline needs a directory")?;
            }
            "--candidate" => {
                candidate_dir = args.next().ok_or("--candidate needs a directory")?;
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (usage: perf_gate [--update] \
                     [--baseline DIR] [--candidate DIR])"
                ))
            }
        }
    }

    if update {
        for bench in BENCHES {
            let src = format!("{candidate_dir}/BENCH_{bench}.json");
            let dst = format!("{baseline_dir}/BENCH_{bench}.json");
            load(&src)?; // refuse to install a malformed artifact
            std::fs::copy(&src, &dst).map_err(|e| format!("copy {src} -> {dst}: {e}"))?;
            println!("updated {dst}");
        }
        return Ok(true);
    }

    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "bench.metric", "baseline ns", "current ns", "delta"
    );
    let mut failed = Vec::new();
    for bench in BENCHES {
        let base_path = format!("{baseline_dir}/BENCH_{bench}.json");
        if !std::path::Path::new(&base_path).exists() {
            return Err(format!(
                "missing baseline {base_path} — BENCH_{bench} has no committed \
                 baseline. Re-baseline with `scripts/perf_gate.sh --update` \
                 (runs the trajectory bench and installs every candidate \
                 artifact as the new baseline)."
            ));
        }
        let cand_path = format!("{candidate_dir}/BENCH_{bench}.json");
        if !std::path::Path::new(&cand_path).exists() {
            return Err(format!(
                "missing candidate {cand_path} — no fresh BENCH_{bench} run \
                 found. Produce one with `cargo bench -q -p gables-bench \
                 --bench trajectory` (scripts/perf_gate.sh does this before \
                 judging)."
            ));
        }
        let base = load(&base_path)?;
        let cand = load(&cand_path)?;
        if base.scale != cand.scale {
            return Err(format!(
                "BENCH_{bench}.json scale mismatch: baseline ran at \
                 GABLES_BENCH_SCALE={} but candidate at {} — re-run at the \
                 baseline scale or re-baseline with --update",
                base.scale, cand.scale
            ));
        }
        // Machine-speed normalization: both runs timed a fixed pure-CPU
        // calibration spin. If the candidate machine (or the current
        // CPU-steal episode) is slower, the baseline scales up by the
        // same ratio — a code regression shows up as the metric moving
        // *relative to* the calibration. Clamped so a wildly different
        // machine still triggers an eyeball-worthy delta.
        let speed_ratio = (cand.calibration / base.calibration).clamp(0.5, 2.0);
        if (speed_ratio - 1.0).abs() > 0.05 {
            println!("  [{bench}] baseline scaled by machine-speed ratio {speed_ratio:.2}");
        }
        for (name, base_ns) in &base.metrics {
            let cur_ns = cand
                .metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("BENCH_{bench}.json candidate lost metric {name}"))?;
            // Allocation rungs are exact counts: no machine-speed
            // normalization, no ratio, no slack — any increase fails.
            let exact = name.ends_with("_allocs");
            let adj_ns = if exact {
                *base_ns
            } else {
                base_ns * speed_ratio
            };
            let delta_pct = if adj_ns > 0.0 {
                (cur_ns - adj_ns) / adj_ns * 100.0
            } else {
                0.0
            };
            let regressed = if exact {
                cur_ns > adj_ns
            } else {
                cur_ns > adj_ns * REGRESSION_RATIO && cur_ns - adj_ns > ABSOLUTE_SLACK_NS
            };
            println!(
                "{:<28} {:>14.3} {:>14.3} {:>+8.1}%{}{}",
                format!("{bench}.{name}"),
                adj_ns,
                cur_ns,
                delta_pct,
                if exact { "  (exact)" } else { "" },
                if regressed { "  REGRESSED" } else { "" }
            );
            if regressed {
                failed.push(format!("{bench}.{name} ({delta_pct:+.1}%)"));
            }
        }
    }
    if failed.is_empty() {
        println!(
            "perf gate passed (threshold {:.0}% + {:.0} us absolute)",
            (REGRESSION_RATIO - 1.0) * 100.0,
            ABSOLUTE_SLACK_NS / 1e3
        );
        Ok(true)
    } else {
        eprintln!(
            "perf gate FAILED: {} (re-baseline with scripts/perf_gate.sh --update \
             if the regression is accepted)",
            failed.join(", ")
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("perf_gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
