//! A minimal in-tree microbenchmark harness.
//!
//! The build environment is offline, so the Criterion dependency the
//! benches originally used cannot be fetched; this module provides the
//! small subset the `benches/` targets need: named timed closures with
//! warm-up, an adaptive per-bench time budget, a name filter from the
//! command line, and a one-line-per-bench report. It has no statistics
//! beyond mean time per iteration — these benches exist to expose gross
//! throughput regressions, not microsecond-level noise.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The timing result of one named benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations (warm-up excluded).
    pub iterations: u64,
    /// Total wall time over the timed iterations.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn nanos_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.total.as_nanos() as f64 / self.iterations as f64
        }
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ns = self.nanos_per_iter();
        let (value, unit) = if ns >= 1e9 {
            (ns / 1e9, "s")
        } else if ns >= 1e6 {
            (ns / 1e6, "ms")
        } else if ns >= 1e3 {
            (ns / 1e3, "us")
        } else {
            (ns, "ns")
        };
        write!(
            f,
            "{:<40} {:>10.2} {}/iter ({} iters)",
            self.name, value, unit, self.iterations
        )
    }
}

/// A benchmark runner: register closures with [`bench`](Self::bench),
/// print the report with [`finish`](Self::finish).
#[derive(Debug, Default)]
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// Builds a harness from the process arguments: the first non-flag
    /// argument (if any) is a substring filter on benchmark names — the
    /// convention `cargo bench <filter>` follows. Flags such as the
    /// `--bench` cargo appends are ignored. The per-bench time budget
    /// defaults to 200 ms and can be overridden with the
    /// `GABLES_BENCH_BUDGET_MS` environment variable.
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget_ms = std::env::var("GABLES_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Self {
            filter,
            budget: Duration::from_millis(budget_ms.max(1)),
            results: Vec::new(),
        }
    }

    /// Overrides the per-bench time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget.max(Duration::from_millis(1));
        self
    }

    /// Times `f`, unless the name filter excludes it: a few warm-up
    /// calls, then repeated calls until the time budget is spent (at
    /// least one timed iteration always runs).
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        for _ in 0..3 {
            f();
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            f();
            iterations += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.results.push(Measurement {
            name: name.to_string(),
            iterations,
            total: start.elapsed(),
        });
    }

    /// Prints one line per measurement and returns them.
    pub fn finish(self) -> Vec<Measurement> {
        for m in &self.results {
            println!("{m}");
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_at_least_one_iteration() {
        let mut h = Harness::default().with_budget(Duration::from_millis(1));
        let mut count = 0u64;
        h.bench("spin", || count += 1);
        let results = h.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].iterations >= 1);
        // Warm-up (3) plus the timed iterations.
        assert_eq!(count, results[0].iterations + 3);
        assert!(results[0].nanos_per_iter() >= 0.0);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut h = Harness {
            filter: Some("keep".into()),
            budget: Duration::from_millis(1),
            results: Vec::new(),
        };
        h.bench("keep_this", || {});
        h.bench("drop_this", || {});
        let results = h.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "keep_this");
    }

    #[test]
    fn display_picks_a_readable_unit() {
        let m = Measurement {
            name: "x".into(),
            iterations: 1,
            total: Duration::from_micros(1500),
        };
        let line = m.to_string();
        assert!(line.contains("ms/iter"), "{line}");
    }
}
