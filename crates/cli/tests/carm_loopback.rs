//! Loopback acceptance test for `POST /v1/carm`: one real request over
//! a socket, checked end to end — envelope payload, determinism of the
//! ladder across parallelism policies, the request's flight record with
//! the handler's `ladder_sweep` span, and the Prometheus exposition
//! reconciling with the traffic actually sent.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use gables_cli::serve::{build_router_with, ServeState};
use gables_model::json::Json;
use gables_model::Parallelism;
use gables_serve::{Server, ServerConfig, ServerHandle, ShardedCache};

/// Starts a server wired exactly like `gables serve`: shared metrics,
/// cache, and flight recorder, with the full observability router.
fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let workers = config.workers;
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let state = ServeState::new(
        server.metrics(),
        Arc::new(ShardedCache::new(8, 256)),
        server.flight(),
        workers,
    );
    let router = build_router_with(&state);
    let join = std::thread::spawn(move || server.run(router).expect("server run"));
    (handle, join)
}

/// One full HTTP exchange with optional extra headers; returns
/// (status line, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut raw = format!("{method} {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read reply");
    let reply = String::from_utf8(bytes).expect("UTF-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// The value of a Prometheus sample line `name_and_labels value`.
fn prom_value(exposition: &str, name_and_labels: &str) -> f64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(name_and_labels)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no sample {name_and_labels:?} in exposition"))
}

/// Unwraps the `{"ok":true,"data":...}` envelope.
fn open(body: &str) -> Json {
    let doc = Json::parse(body).expect("envelope JSON");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{body}");
    doc.get("data").expect("data field").clone()
}

/// The committed example spec, read from the repo's `specs/` directory.
fn example_spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/carm_example.ini");
    std::fs::read_to_string(path).expect("specs/carm_example.ini")
}

#[test]
fn carm_request_envelope_flight_record_and_prometheus_reconcile() {
    let (handle, join) = start_server(ServerConfig {
        workers: 4,
        flight_capacity: 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let spec = example_spec();
    let trace_id = "carm-loopback-0001";

    // One traced request: envelope carries the full ladder and sweep.
    let (status, headers, body) = request(
        addr,
        "POST",
        "/v1/carm",
        &[("X-Request-Id", trace_id)],
        &spec,
    );
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(headers.contains("X-Cache: miss"), "{headers}");
    let data = open(&body);
    let ladder = data
        .get("ladder")
        .and_then(Json::as_array)
        .expect("ladder array");
    assert_eq!(ladder.len(), 4, "l1, l2, slc, dram");
    let gbps: Vec<f64> = ladder
        .iter()
        .map(|r| r.get("gbps").and_then(Json::as_f64).unwrap())
        .collect();
    assert!(
        gbps.windows(2).all(|w| w[0] > w[1]),
        "measured ceilings must strictly decrease: {gbps:?}"
    );
    let sweep = data
        .get("sweep")
        .and_then(Json::as_array)
        .expect("sweep array");
    assert!(sweep
        .iter()
        .any(|p| p.get("binding").and_then(Json::as_str) == Some("dram")));
    assert!(sweep
        .iter()
        .any(|p| p.get("binding").and_then(Json::as_str) == Some("compute")));

    // Determinism across parallelism policies: the served output (the
    // server evaluates under Auto) is byte-identical to serial and
    // two-thread CLI reports of the same spec.
    let served_output = data.get("output").and_then(Json::as_str).unwrap();
    for par in [Parallelism::Serial, Parallelism::Threads(2)] {
        let report = gables_cli::carm::carm_report(&spec, par).unwrap();
        assert_eq!(
            served_output,
            gables_cli::carm::render_text(&report),
            "{par:?} must match the served bytes"
        );
        assert_eq!(
            data.to_string(),
            {
                let Json::Object(mut fields) = gables_cli::carm::json_data(&report) else {
                    panic!("json_data must be an object")
                };
                fields.push(("output".into(), Json::str(served_output)));
                Json::Object(fields).to_string()
            },
            "{par:?} ladder data must be byte-identical"
        );
    }

    // A repeat of the same spec (cosmetic comment change) hits the cache.
    let (status, headers, _) = request(addr, "POST", "/v1/carm", &[], &format!("# repeat\n{spec}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("X-Cache: hit"), "{headers}");

    // Flight record: the traced request is retrievable by ID and its
    // span tree nests the handler's simulator spans.
    let (status, _, body) = request(
        addr,
        "GET",
        &format!("/v1/debug/requests?id={trace_id}"),
        &[],
        "",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    let record = open(&body);
    assert_eq!(record.get("route").and_then(Json::as_str), Some("/v1/carm"));
    assert_eq!(record.get("status").and_then(Json::as_f64), Some(200.0));
    assert_eq!(record.get("cache").and_then(Json::as_str), Some("miss"));
    let spans = record.get("spans").and_then(Json::as_array).expect("spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for expected in ["server.request", "dispatch /v1/carm", "ladder_sweep"] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }

    // Prometheus: every request so far (carm miss, carm hit, the debug
    // fetch) is in the handled counter, all 2xx.
    let sent = 3;
    let (status, _, prom) = request(addr, "GET", "/v1/metrics?format=prom", &[], "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        prom_value(&prom, "gables_requests_handled_total"),
        sent as f64
    );
    assert_eq!(
        prom_value(&prom, "gables_responses_total{class=\"2xx\"} "),
        sent as f64
    );
    assert_eq!(
        prom_value(&prom, "gables_request_latency_seconds_bucket{le=\"+Inf\"} "),
        sent as f64
    );

    // Malformed hierarchies answer 400 with the closed code in the
    // envelope, and the error is flight-recorded too.
    let bad = format!("{spec}\n[cache.tiny]\ncapacity_kib = 1\nlatency_ns = 1\n");
    let (status, _, body) = request(addr, "POST", "/v1/carm", &[], &bad);
    assert_eq!(status, "HTTP/1.1 400 Bad Request", "{body}");
    let doc = Json::parse(&body).expect("error envelope");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let error = doc.get("error").expect("error field");
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("invalid_cache_config"),
        "{body}"
    );
    assert!(error
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("ordering violation"));

    handle.shutdown();
    join.join().expect("graceful shutdown");
}
