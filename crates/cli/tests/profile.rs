//! Integration tests for the performance-observability surface: the
//! CLI's `--profile` flag and the server's `/v1/debug/profile`
//! endpoint, exercised end to end.
//!
//! The profiler session is process-global (one at a time), so every
//! test here runs inside one `#[test]` function per surface and the
//! two surfaces serialize on a shared lock.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gables_cli::serve::build_router;
use gables_cli::spec::FIGURE_6B_SPEC;
use gables_serve::{Server, ServerConfig, ShardedCache};

/// Serializes the profiler-session tests: sessions are one-at-a-time
/// process-wide, so overlapping tests would see spurious `Busy`.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn run_cli(args: &[&str]) -> Result<String, gables_cli::spec::SpecError> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    gables_cli::run(&args, &|path| {
        if path == "SPEC" {
            Ok(FIGURE_6B_SPEC.to_string())
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no such file",
            ))
        }
    })
}

/// Parses folded-stack text into (path, count) pairs, checking the
/// format line by line: `frame1;frame2;... <count>`.
fn parse_folded(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .map(|line| {
            let (path, count) = line.rsplit_once(' ').expect("folded line has a count");
            assert!(!path.is_empty(), "folded line has an empty path: {line:?}");
            assert!(
                path.split(';').all(|frame| !frame.is_empty()),
                "folded path has an empty frame: {line:?}"
            );
            (path.to_string(), count.parse().expect("count parses"))
        })
        .collect()
}

#[test]
fn cli_profile_folded_output_is_stable_across_thread_policies() {
    let _guard = SESSION_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("gables-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let f_serial = dir.join("serial.folded");
    let f_threads = dir.join("threads2.folded");

    let out = run_cli(&[
        "sweep",
        "SPEC",
        "intensity",
        "0.25",
        "64",
        "64",
        "--threads",
        "serial",
        "--profile",
        f_serial.to_str().unwrap(),
    ])
    .expect("serial profiled sweep");
    assert!(out.contains("profile:"), "summary line present:\n{out}");
    assert!(out.contains("wrote "), "output names the artifact:\n{out}");

    run_cli(&[
        "sweep",
        "SPEC",
        "intensity",
        "0.25",
        "64",
        "64",
        "--threads",
        "2",
        "--profile",
        f_threads.to_str().unwrap(),
    ])
    .expect("two-thread profiled sweep");

    let serial = parse_folded(&std::fs::read_to_string(&f_serial).unwrap());
    let threads = parse_folded(&std::fs::read_to_string(&f_threads).unwrap());
    assert!(
        !serial.is_empty() && !threads.is_empty(),
        "profiles non-empty"
    );

    // Counts may differ run to run (timer samples are wall-clock), but
    // the *path set* is structural: the same spans run under every
    // policy, so the same frame names in the same nesting must appear.
    let serial_paths: BTreeSet<&str> = serial.iter().map(|(p, _)| p.as_str()).collect();
    let thread_paths: BTreeSet<&str> = threads.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(
        serial_paths, thread_paths,
        "folded path sets must match across --threads serial|2"
    );
    assert!(
        serial_paths.contains("main;dispatch;sweep;worker"),
        "span nesting main;dispatch;sweep;worker present, got {serial_paths:?}"
    );

    // Output is sorted by path (deterministic file layout).
    let mut sorted = serial.clone();
    sorted.sort();
    assert_eq!(serial, sorted, "folded output is path-sorted");

    // JSON flavor: same data, parseable, same stack paths.
    let f_json = dir.join("serial.json");
    run_cli(&["eval", "SPEC", "--profile", f_json.to_str().unwrap()]).expect("profiled eval");
    let doc = gables_model::json::Json::parse(&std::fs::read_to_string(&f_json).unwrap())
        .expect("profile JSON parses");
    let stacks = doc
        .get("stacks")
        .and_then(|s| s.as_array())
        .expect("stacks array");
    assert!(!stacks.is_empty(), "eval profile has stacks");
    let paths: Vec<&str> = stacks
        .iter()
        .filter_map(|s| s.get("stack").and_then(|p| p.as_str()))
        .collect();
    assert!(
        paths.contains(&"main;dispatch;eval"),
        "eval profile nests main;dispatch;eval, got {paths:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// One full HTTP exchange; returns (status line, body).
fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) if !bytes.is_empty() => break,
            Err(e) => panic!("read reply: {e}"),
        }
    }
    let reply = String::from_utf8(bytes).expect("UTF-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn debug_profile_over_loopback_returns_folded_stacks() {
    let _guard = SESSION_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let addr = handle.addr();
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(8, 128)));
    let join = std::thread::spawn(move || server.run(router).expect("server run"));

    // Traffic generator: keeps request spans running while the profile
    // session below samples, so the folded output has server frames.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let body = FIGURE_6B_SPEC;
                let raw = format!(
                    "POST /v1/eval?format=text HTTP/1.1\r\nHost: l\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(raw.as_bytes()).expect("send");
                let mut sink = Vec::new();
                let _ = stream.read_to_end(&mut sink);
            }
        })
    };

    let (status, body) = http_get(addr, "/v1/debug/profile?seconds=0.4&format=folded");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    traffic.join().expect("traffic thread");

    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let stacks = parse_folded(body.trim_end_matches('\n'));
    assert!(!stacks.is_empty(), "loopback profile has stacks:\n{body}");
    assert!(
        stacks
            .iter()
            .any(|(path, _)| path.contains("server.request")),
        "profile contains server request frames, got:\n{body}"
    );

    handle.shutdown();
    join.join().expect("server thread");
}
