//! Regression corpus runner: every file under `tests/corpus/` (workspace
//! root) is replayed through both input boundaries — the CLI's
//! `eval_command` and the `/v1/eval` route — and must land on the side
//! its filename declares:
//!
//! * `accept_*` — parses, evaluates, and serves as `200`.
//! * `reject_*` — refused with a structured error at *both* boundaries:
//!   a `SpecError` from the CLI and a `400` envelope whose `kind` is in
//!   the closed error-code vocabulary from the route.
//!
//! The corpus holds the inputs that motivated the validation layer
//! (`nan`, `inf`, `-0.0`, subnormals, `1e400`, giga-scaling overflow,
//! both the INI and JSON carriers). Run it in `--release` too: the
//! original hole was `debug_assert!`-only checking, so the release
//! profile is the one that actually proves the domain is closed.

use std::sync::Arc;

use gables_cli::eval_command;
use gables_cli::serve::build_router;
use gables_cli::spec::SPEC_PARSE_KIND;
use gables_model::json::Json;
use gables_model::ErrorKind;
use gables_serve::{Request, ServerMetrics, ShardedCache};

const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");

fn corpus() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(CORPUS_DIR)
        .expect("corpus directory")
        .map(|entry| {
            let path = entry.expect("corpus entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let body = std::fs::read_to_string(&path).expect("corpus file is UTF-8");
            (name, body)
        })
        .collect();
    files.sort();
    files
}

fn post_eval(body: &str) -> gables_serve::Response {
    let router = build_router(
        Arc::new(ServerMetrics::new()),
        Arc::new(ShardedCache::new(4, 32)),
    );
    router.dispatch(&Request {
        method: "POST".into(),
        path: "/v1/eval".into(),
        query: None,
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    })
}

#[test]
fn corpus_is_present_and_covers_both_verdicts_and_carriers() {
    let files = corpus();
    assert!(files.len() >= 12, "corpus shrank to {} files", files.len());
    for verdict in ["accept_", "reject_"] {
        for carrier in [".gables", ".json"] {
            assert!(
                files
                    .iter()
                    .any(|(n, _)| n.starts_with(verdict) && n.ends_with(carrier)),
                "no {verdict}*{carrier} case in the corpus"
            );
        }
    }
}

#[test]
fn every_corpus_file_lands_on_its_declared_side_at_both_boundaries() {
    let closed_kinds: Vec<&str> = ErrorKind::ALL
        .iter()
        .map(|k| k.code())
        .chain(std::iter::once(SPEC_PARSE_KIND))
        .collect();
    for (name, body) in corpus() {
        let cli = eval_command(&body);
        let resp = post_eval(&body);
        if name.starts_with("accept_") {
            let output = cli.unwrap_or_else(|e| panic!("{name}: CLI rejected it: {e}"));
            assert!(!output.is_empty(), "{name}: empty CLI output");
            assert_eq!(resp.status, 200, "{name}: route rejected it");
        } else if name.starts_with("reject_") {
            let err = cli.expect_err(&format!("{name}: CLI accepted it"));
            assert!(!err.to_string().is_empty(), "{name}: empty error message");
            assert_eq!(resp.status, 400, "{name}: route accepted it");
            let envelope =
                Json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("error envelope");
            assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(false));
            let error = envelope.get("error").expect("error object").clone();
            let kind = error
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{name}: envelope has no error kind"));
            assert!(
                closed_kinds.contains(&kind),
                "{name}: kind {kind:?} is outside the closed vocabulary"
            );
            // The two boundaries must agree on the *reason*, not just
            // the verdict.
            assert_eq!(err.code(), kind, "{name}: CLI and route disagree");
        } else {
            panic!("{name}: corpus files must start with accept_ or reject_");
        }
    }
}

#[test]
fn release_mode_rejections_do_not_rely_on_debug_assertions() {
    // The sentinel case for the original hole: a NaN that used to slip
    // through once `debug_assert!` was compiled out. If this test runs
    // under `--release` (scripts/check.sh does), a regression back to
    // assert-only validation would accept the spec instead of erroring.
    let body = "[soc]\nppeak_gops = nan\nbpeak_gbps = 10\n\n[ip.CPU]\nbandwidth_gbps = 6\n\n\
                [workload]\nfractions   = 1\nintensities = 4\n";
    let err = eval_command(body).expect_err("NaN ppeak must be rejected in every profile");
    assert_eq!(err.code(), "invalid_parameter");
    assert!(err.to_string().contains("ppeak_gops"), "{err}");
}
