//! Acceptance tests for the nonblocking event loop serving tier: HTTP
//! pipelining on one keep-alive connection, a 10,000-idle-connection
//! soak in a single child process, slow/partial writers that must not
//! stall ready connections, and `/v1/batch` answers bit-identical to
//! the concatenation of single `/v1/eval` responses across thread
//! policies (`GABLES_THREADS=1|2`) and replica counts (`--replicas
//! 1|2`).
//!
//! The soak and the batch matrix run the real `gables` binary
//! (`CARGO_BIN_EXE_gables`) in supervised `--announce` mode so the
//! client and server each get their own file-descriptor budget and the
//! replica router is exercised exactly as `gables serve --replicas N`
//! wires it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gables_cli::serve::build_router;
use gables_cli::spec::FIGURE_6B_SPEC;
use gables_model::json::Json;
use gables_serve::faults::{FaultCase, FaultKind};
use gables_serve::{Server, ServerConfig, ServerHandle, ShardedCache};

/// Starts an in-process server with the full Gables router.
fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(8, 128)));
    let join = std::thread::spawn(move || server.run(router).expect("server run"));
    (handle, join)
}

/// One close-delimited HTTP exchange; returns (status line, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: l\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) if !bytes.is_empty() => break,
            Err(e) => panic!("read reply: {e}"),
        }
    }
    let reply = String::from_utf8(bytes).expect("UTF-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Reads exactly one `Content-Length`-framed response off a keep-alive
/// stream; returns (head, body). `buf` carries bytes past the frame
/// boundary between calls — the server is free to coalesce pipelined
/// responses into a single TCP segment.
fn read_framed(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (String, String) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF before response head completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end - 4].to_vec()).expect("UTF-8 head");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF before response body completed");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end..head_end + content_length].to_vec()).unwrap();
    buf.drain(..head_end + content_length);
    (head, body)
}

#[test]
fn pipelined_keep_alive_requests_answer_in_order_on_one_connection() {
    let (handle, join) = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Three requests written back to back before reading a byte: two
    // cacheable evals and a healthz, the last one closing.
    let eval = format!(
        "POST /v1/eval HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{FIGURE_6B_SPEC}",
        FIGURE_6B_SPEC.len()
    );
    let pipelined = format!("{eval}{eval}GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    stream.write_all(pipelined.as_bytes()).expect("send");

    let mut buf = Vec::new();
    let (head1, body1) = read_framed(&mut stream, &mut buf);
    assert!(head1.starts_with("HTTP/1.1 200 OK"), "{head1}");
    assert!(head1.contains("Connection: keep-alive"), "{head1}");
    let (head2, body2) = read_framed(&mut stream, &mut buf);
    assert!(head2.starts_with("HTTP/1.1 200 OK"), "{head2}");
    assert_eq!(body1, body2, "identical pipelined evals answer identically");
    let (head3, body3) = read_framed(&mut stream, &mut buf);
    assert!(head3.starts_with("HTTP/1.1 200 OK"), "{head3}");
    assert!(head3.contains("Connection: close"), "{head3}");
    assert_eq!(body3, "ok\n");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after close");
    assert!(
        buf.is_empty() && rest.is_empty(),
        "nothing after the closing response"
    );

    handle.shutdown();
    join.join().expect("graceful shutdown");
    let snapshot = handle.metrics().snapshot();
    assert_eq!(snapshot.handled, 3, "all three pipelined requests served");
    assert!(snapshot.cache_hits >= 1, "second eval hits the cache");
}

#[test]
fn slow_and_partial_writers_do_not_stall_ready_connections() {
    // Short read timeout so the deliberately stalling clients resolve
    // quickly; plenty of workers so only readiness is under test.
    let (handle, join) = start_server(ServerConfig {
        read_timeout: Duration::from_millis(900),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // A slow-loris drip and a mid-head stall from the fault harness run
    // in the background the whole time...
    let faults: Vec<_> = [
        FaultKind::SlowLoris,
        FaultKind::TruncatedHead,
        FaultKind::SlowLoris,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, kind)| {
        std::thread::spawn(move || {
            let case = FaultCase {
                kind,
                seed: 0xC0FFEE + i as u64,
            };
            case.inject(addr, Duration::from_secs(10)).expect("inject")
        })
    })
    .collect();

    // ...plus a partial writer that sends half a valid request, stalls,
    // then finishes: it must still be answered once complete.
    let partial = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let raw =
            "GET /v1/healthz HTTP/1.1\r\nHost: l\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
        let split = raw.len() / 2;
        stream.write_all(&raw.as_bytes()[..split]).expect("half");
        std::thread::sleep(Duration::from_millis(400));
        stream.write_all(&raw.as_bytes()[split..]).expect("rest");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("reply");
        reply
    });

    // Ready connections must answer promptly while the stalled ones sit
    // in the event loop.
    for _ in 0..5 {
        let start = Instant::now();
        let (status, body) = http(addr, "GET", "/v1/healthz", "");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "ready connections must not queue behind stalled writers"
        );
    }

    let reply = partial.join().expect("partial writer");
    assert!(
        reply.starts_with("HTTP/1.1 200 OK"),
        "late-but-complete request is served: {reply}"
    );
    for fault in faults {
        let report = fault.join().expect("fault thread");
        assert!(
            report.acceptable(),
            "stalling client saw {:?}",
            report.outcome
        );
    }

    handle.shutdown();
    join.join().expect("graceful shutdown");
}

/// A supervised `gables serve` child process: spawned with
/// `--announce`, bound address read from its stdout, shut down by
/// dropping its stdin.
struct ChildServer {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
}

impl ChildServer {
    fn spawn(extra_args: &[&str], env: &[(&str, &str)]) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_gables"));
        cmd.arg("serve")
            .arg("127.0.0.1:0")
            .arg("--announce")
            .args(extra_args)
            .env("GABLES_LOG", "error")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in env {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("spawn gables serve");
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("announcement line")
            .expect("read announcement");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
            .parse()
            .expect("announced address");
        ChildServer { child, stdin, addr }
    }

    fn stop(mut self) {
        drop(self.stdin.take());
        for _ in 0..100 {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn ten_thousand_idle_keep_alive_connections_are_held_by_one_process() {
    const CONNECTIONS: usize = 10_000;
    const THREADS: usize = 8;

    let server = ChildServer::spawn(&[], &[]);
    let addr = server.addr;

    // Open the idle herd from a handful of threads; each connection is
    // kept alive (never written to) for the rest of the test.
    let openers: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut held = Vec::with_capacity(CONNECTIONS / THREADS);
                while held.len() < CONNECTIONS / THREADS {
                    match TcpStream::connect(addr) {
                        Ok(stream) => held.push(stream),
                        // Transient accept-queue overflow: back off and
                        // let the event loop drain the backlog.
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
                held
            })
        })
        .collect();
    let herds: Vec<Vec<TcpStream>> = openers
        .into_iter()
        .map(|t| t.join().expect("opener thread"))
        .collect();
    let open: usize = herds.iter().map(Vec::len).sum();
    assert_eq!(open, CONNECTIONS, "the full herd connected");

    // With 10k idle connections parked, a fresh request still answers
    // promptly: idle connections cost a slab slot, not a worker.
    let start = Instant::now();
    let (status, body) = http(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert_eq!(body, "ok\n");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "probe must not queue behind the idle herd"
    );

    // One of the parked connections wakes up and is served too.
    let mut parked = herds
        .into_iter()
        .next()
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    parked
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    parked
        .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: l\r\n\r\n")
        .expect("wake a parked connection");
    let (head, body) = read_framed(&mut parked, &mut Vec::new());
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(body, "ok\n");

    server.stop();
}

/// JSON-escapes a spec string for embedding in a batch request body.
fn json_str(text: &str) -> String {
    Json::str(text).to_string()
}

/// The three-item batch workload: two valid specs (one repeated, one
/// edited) and one malformed, so per-item error isolation is exercised.
fn batch_specs() -> Vec<String> {
    let edited = FIGURE_6B_SPEC.replace("bpeak_gbps = 10", "bpeak_gbps = 30");
    assert_ne!(edited, FIGURE_6B_SPEC, "the edit must take");
    vec![FIGURE_6B_SPEC.to_string(), "not a spec".to_string(), edited]
}

/// POSTs each spec to `/v1/eval` singly, then the whole list to
/// `/v1/batch`, and asserts the batch answer is bit-identical to the
/// envelope-spliced concatenation of the single responses. Returns the
/// batch body for cross-server comparison.
fn batch_matches_singles(addr: SocketAddr) -> String {
    let specs = batch_specs();
    let singles: Vec<String> = specs
        .iter()
        .map(|spec| {
            let (_, body) = http(addr, "POST", "/v1/eval", spec);
            body
        })
        .collect();
    let payload = format!(
        "{{\"specs\":[{}]}}",
        specs
            .iter()
            .map(|s| json_str(s))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, batch_body) = http(addr, "POST", "/v1/batch", &payload);
    assert_eq!(status, "HTTP/1.1 200 OK", "{batch_body}");
    let expected = format!(
        "{{\"ok\":true,\"data\":{{\"count\":{},\"items\":[{}]}},\"error\":null}}",
        singles.len(),
        singles.join(",")
    );
    assert_eq!(
        batch_body, expected,
        "batch must be bit-identical to the concatenation of single responses"
    );
    batch_body
}

#[test]
fn batch_is_bit_identical_across_thread_policies_and_replica_counts() {
    // Four supervised servers: serial and two-thread single-process,
    // then one- and two-replica sharded routers.
    let serial = ChildServer::spawn(&[], &[("GABLES_THREADS", "1")]);
    let threaded = ChildServer::spawn(&[], &[("GABLES_THREADS", "2")]);
    let one_replica = ChildServer::spawn(&["--replicas", "1"], &[]);
    let two_replicas = ChildServer::spawn(&["--replicas", "2"], &[]);

    let body_serial = batch_matches_singles(serial.addr);
    let body_threaded = batch_matches_singles(threaded.addr);
    let body_one = batch_matches_singles(one_replica.addr);
    let body_two = batch_matches_singles(two_replicas.addr);

    assert_eq!(
        body_serial, body_threaded,
        "GABLES_THREADS=1 and =2 must serve identical bytes"
    );
    assert_eq!(
        body_one, body_two,
        "--replicas 1 and 2 must serve identical bytes"
    );
    assert_eq!(
        body_serial, body_one,
        "sharded and single-process answers must match"
    );

    // The malformed middle item failed alone without failing the batch.
    let envelope = Json::parse(&body_serial).expect("batch envelope");
    let items = envelope
        .get("data")
        .and_then(|d| d.get("items"))
        .and_then(Json::as_array)
        .expect("items array");
    assert_eq!(items.len(), 3);
    assert_eq!(items[0].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(items[1].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        items[1]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("spec_parse")
    );
    assert_eq!(items[2].get("ok").and_then(Json::as_bool), Some(true));

    for server in [serial, threaded, one_replica, two_replicas] {
        server.stop();
    }
}
