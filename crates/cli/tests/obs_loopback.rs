//! Observability loopback tests for `gables serve`: request identity,
//! the flight recorder, Prometheus exposition, and span propagation
//! verified over real sockets.
//!
//! These are the acceptance tests for the tracing tier: every response
//! (success, error, or shed) carries an `X-Request-Id`; client-supplied
//! IDs echo back; `/v1/debug/requests` reconciles with the metrics
//! counters; `/v1/metrics?format=prom` is a valid exposition whose
//! `+Inf` latency bucket equals the handled counter; and the Chrome
//! trace exported for one request nests server → handler → worker
//! spans.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use gables_cli::serve::{build_router_with, ServeState};
use gables_cli::spec::FIGURE_6B_SPEC;
use gables_model::json::Json;
use gables_serve::{Server, ServerConfig, ServerHandle, ShardedCache};

/// Starts a server wired exactly like `gables serve`: shared metrics,
/// cache, and flight recorder, with the full observability router.
fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let workers = config.workers;
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let state = ServeState::new(
        server.metrics(),
        Arc::new(ShardedCache::new(8, 256)),
        server.flight(),
        workers,
    );
    let router = build_router_with(&state);
    let join = std::thread::spawn(move || server.run(router).expect("server run"));
    (handle, join)
}

/// One full HTTP exchange with optional extra headers; returns
/// (status line, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut raw = format!("{method} {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read reply");
    let reply = String::from_utf8(bytes).expect("UTF-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Case-insensitive response-header lookup in the raw header block.
fn header(headers: &str, name: &str) -> Option<String> {
    headers.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

/// The value of a Prometheus sample line `name_and_labels value`.
fn prom_value(exposition: &str, name_and_labels: &str) -> f64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(name_and_labels)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no sample {name_and_labels:?} in exposition"))
}

/// Unwraps the `{"ok":true,"data":...}` envelope.
fn open(body: &str) -> Json {
    let doc = Json::parse(body).expect("envelope JSON");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{body}");
    doc.get("data").expect("data field").clone()
}

#[test]
fn request_ids_flight_recorder_and_prometheus_reconcile_under_load() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 30;
    const TOTAL: usize = THREADS * PER_THREAD;

    let (handle, join) = start_server(ServerConfig {
        workers: 8,
        queue_depth: 1024,
        flight_capacity: 256,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // ≥100 concurrent requests, a mix of cacheable evals (repeat spec →
    // hits) and unique sweeps (distinct steps → misses that exercise the
    // parallel map). Every response must carry an X-Request-Id, and
    // client-supplied IDs must echo back verbatim.
    let mut clients = Vec::new();
    for t in 0..THREADS {
        clients.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let (target, body, id) = if i % 2 == 0 {
                    (
                        "/v1/eval?format=text".to_string(),
                        FIGURE_6B_SPEC.to_string(),
                        None,
                    )
                } else {
                    (
                        format!(
                            "/v1/sweep?param=bpeak&from=5&to=40&steps={}",
                            2 + t * 64 + i
                        ),
                        FIGURE_6B_SPEC.to_string(),
                        Some(format!("probe-{t}-{i}")),
                    )
                };
                let extra: Vec<(&str, &str)> = id
                    .as_deref()
                    .map(|v| vec![("X-Request-Id", v)])
                    .unwrap_or_default();
                let (status, headers, resp_body) = request(addr, "POST", &target, &extra, &body);
                assert_eq!(status, "HTTP/1.1 200 OK", "{resp_body}");
                let echoed = header(&headers, "X-Request-Id")
                    .unwrap_or_else(|| panic!("missing X-Request-Id: {headers}"));
                match id {
                    Some(sent) => assert_eq!(echoed, sent, "client ID must echo back"),
                    None => assert!(!echoed.is_empty(), "generated ID must be present"),
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // One more unique sweep whose trace we will pull out by ID below.
    let trace_id = "trace-probe";
    let (status, headers, _) = request(
        addr,
        "POST",
        "/v1/sweep?param=bpeak&from=5&to=40&steps=97",
        &[("X-Request-Id", trace_id)],
        FIGURE_6B_SPEC,
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(header(&headers, "X-Request-Id").as_deref(), Some(trace_id));
    assert_eq!(
        header(&headers, "X-Cache").as_deref(),
        Some("miss"),
        "unique sweep must be a cache miss so its handler spans exist"
    );

    // Prometheus exposition: the storm plus the trace probe have all been
    // recorded by the time their responses were read (metrics are written
    // before the connection closes).
    let sent = TOTAL + 1;
    let (status, headers, prom) = request(addr, "GET", "/v1/metrics?format=prom", &[], "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        header(&headers, "Content-Type")
            .unwrap()
            .starts_with("text/plain; version=0.0.4"),
        "{headers}"
    );
    let handled = prom_value(&prom, "gables_requests_handled_total");
    assert_eq!(handled, sent as f64);
    assert_eq!(
        prom_value(&prom, "gables_responses_total{class=\"2xx\"} "),
        sent as f64
    );
    // Histogram buckets are cumulative and end at +Inf == handled.
    let buckets: Vec<f64> = prom
        .lines()
        .filter_map(|l| {
            l.strip_prefix("gables_request_latency_seconds_bucket{le=")?
                .split("} ")
                .nth(1)?
                .trim()
                .parse()
                .ok()
        })
        .collect();
    assert!(!buckets.is_empty(), "{prom}");
    assert!(
        buckets.windows(2).all(|w| w[1] >= w[0]),
        "buckets must be cumulative: {buckets:?}"
    );
    assert_eq!(
        prom_value(&prom, "gables_request_latency_seconds_bucket{le=\"+Inf\"} "),
        handled,
        "+Inf bucket must equal the handled counter"
    );
    assert_eq!(
        prom_value(&prom, "gables_request_latency_seconds_count"),
        handled
    );
    assert!(prom_value(&prom, "gables_uptime_seconds") >= 0.0);
    assert!(prom.contains("gables_build_info{version=\""), "{prom}");

    // Flight recorder: every request ever served is in recorded_total
    // (the exposition request above is the +1), and the ring holds the
    // most recent ones with latency and span summaries.
    let (status, _, body) = request(addr, "GET", "/v1/debug/requests?n=1000", &[], "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let data = open(&body);
    assert_eq!(
        data.get("recorded_total").and_then(Json::as_f64),
        Some((sent + 1) as f64),
        "flight recorder must reconcile with traffic actually sent"
    );
    let requests = data
        .get("requests")
        .and_then(Json::as_array)
        .expect("requests");
    assert_eq!(
        requests.len(),
        256.min(sent + 1),
        "ring holds the last capacity records"
    );
    for r in requests {
        assert!(r.get("id").and_then(Json::as_str).is_some());
        assert!(r.get("latency_us").and_then(Json::as_f64).unwrap() >= 0.0);
        let summary = r.get("span_summary").and_then(Json::as_str).unwrap();
        assert!(
            summary.starts_with("server.request"),
            "every record carries a span tree summary: {summary:?}"
        );
    }

    // The traced sweep: full detail by ID, then its Chrome trace. The
    // span tree must nest server.request → dispatch → sweep → worker.
    let (status, _, body) = request(
        addr,
        "GET",
        &format!("/v1/debug/requests?id={trace_id}"),
        &[],
        "",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    let record = open(&body);
    assert_eq!(record.get("cache").and_then(Json::as_str), Some("miss"));
    let spans = record.get("spans").and_then(Json::as_array).expect("spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for expected in ["server.request", "dispatch /v1/sweep", "sweep", "worker"] {
        assert!(
            names.contains(&expected),
            "missing span {expected:?} in {names:?}"
        );
    }

    let (status, _, body) = request(
        addr,
        "GET",
        &format!("/v1/debug/requests?id={trace_id}&format=trace"),
        &[],
        "",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    let trace = Json::parse(&body).expect("Chrome trace must be valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let name_of = |e: &Json| e.get("name").and_then(Json::as_str).unwrap().to_string();
    let root = complete
        .iter()
        .find(|e| name_of(e) == "server.request")
        .expect("root span in trace");
    let root_dur = root.get("dur").and_then(Json::as_f64).unwrap();
    for e in &complete {
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(Json::as_f64).unwrap();
        assert!(ts >= 0.0 && dur >= 0.0);
        assert!(
            ts + dur <= root_dur + 1.0,
            "child spans must nest inside the root: {} ends at {}",
            name_of(e),
            ts + dur
        );
    }
    assert!(complete.iter().any(|e| name_of(e) == "worker"));

    handle.shutdown();
    join.join().expect("graceful shutdown");
}

#[test]
fn healthz_json_is_additive_and_the_plain_probe_is_byte_identical() {
    let (handle, join) = start_server(ServerConfig::default());
    let addr = handle.addr();

    let (status, _, body) = request(addr, "GET", "/v1/healthz", &[], "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n", "plain probe must stay byte-identical");

    let (status, _, body) = request(addr, "GET", "/v1/healthz?format=json", &[], "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let data = open(&body);
    assert_eq!(data.get("status").and_then(Json::as_str), Some("ok"));
    assert!(data.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
    assert!(data.get("version").and_then(Json::as_str).is_some());
    assert!(data.get("workers").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(
        data.get("worker_saturation")
            .and_then(Json::as_f64)
            .unwrap()
            >= 0.0
    );

    handle.shutdown();
    join.join().expect("graceful shutdown");
}

#[test]
fn error_responses_and_unmatched_routes_are_identified_and_folded() {
    let (handle, join) = start_server(ServerConfig::default());
    let addr = handle.addr();

    // A parse failure still gets a request ID.
    let (status, headers, _) = request(addr, "POST", "/v1/eval", &[], "not a spec");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(header(&headers, "X-Request-Id").is_some(), "{headers}");

    // Unknown paths fold into one "(unmatched)" label instead of letting
    // a client mint unbounded route cardinality.
    for i in 0..5 {
        let (status, headers, _) = request(addr, "GET", &format!("/v1/fuzz-{i}"), &[], "");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        assert!(header(&headers, "X-Request-Id").is_some());
    }
    let (_, _, prom) = request(addr, "GET", "/v1/metrics?format=prom", &[], "");
    assert_eq!(
        prom_value(&prom, "gables_route_requests_total{route=\"(unmatched)\"} "),
        5.0
    );
    assert!(
        !prom.contains("fuzz"),
        "unknown paths must not become labels"
    );

    handle.shutdown();
    join.join().expect("graceful shutdown");
}
