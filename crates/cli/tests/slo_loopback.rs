//! Real-socket acceptance tests for the fleet SLO plane: a request
//! storm across `gables serve --replicas 2` must produce a parent
//! `/v1/slo` whose merged `/v1/eval` sketch is bit-identical to both
//! (a) the merge of the per-shard snapshots fetched directly from the
//! shard children and (b) a union-stream sketch rebuilt locally from
//! the exact per-request latencies in the fleet debug plane; sketch
//! quantiles must honor the ±α relative-error bound against exact
//! nearest-rank quantiles of those latencies; a deliberately
//! unmeetable objective must report a burn rate above 1.0 while a
//! generous one stays in SLO; and the fleet stays healthy through a
//! client-side fault storm.
//!
//! The storm test is soak-sized (it spawns a parent plus two shard
//! processes and pushes a few hundred requests); `scripts/check.sh
//! --quick` skips it by exporting `GABLES_QUICK=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Duration;

use gables_cli::spec::FIGURE_6B_SPEC;
use gables_model::json::Json;
use gables_model::sketch::QuantileSketch;
use gables_serve::faults::FaultSchedule;
use gables_serve::SloSnapshot;

/// Requests in the storm. Kept under a single shard's flight-ring
/// capacity (64) so every latency survives for the exact-quantile
/// check even if consistent hashing skews the split.
const STORM: usize = 60;

/// True when `scripts/check.sh --quick` asks to skip soak-sized tests.
fn quick() -> bool {
    std::env::var("GABLES_QUICK").is_ok_and(|v| v == "1")
}

/// A supervised `gables serve` child process: spawned with
/// `--announce`, bound address read from its stdout, shut down by
/// dropping its stdin.
struct ChildServer {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
}

impl ChildServer {
    fn spawn(extra_args: &[&str]) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_gables"));
        cmd.arg("serve")
            .arg("127.0.0.1:0")
            .arg("--announce")
            .args(extra_args)
            .env("GABLES_LOG", "error")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn gables serve");
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("announcement line")
            .expect("read announcement");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
            .parse()
            .expect("announced address");
        ChildServer { child, stdin, addr }
    }

    fn stop(mut self) {
        drop(self.stdin.take());
        for _ in 0..100 {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One close-delimited HTTP exchange; returns (status line, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: l\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) if !bytes.is_empty() => break,
            Err(e) => panic!("read reply: {e}"),
        }
    }
    let reply = String::from_utf8(bytes).expect("UTF-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// GETs `target`, asserts 200, and returns the envelope's `data`.
fn get_data(addr: SocketAddr, target: &str) -> Json {
    let (status, body) = http(addr, "GET", target, "");
    assert!(status.starts_with("HTTP/1.1 200"), "{target}: {status}");
    let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{target}: bad JSON ({e}): {body}"));
    doc.get("data")
        .unwrap_or_else(|| panic!("{target}: no data envelope: {body}"))
        .clone()
}

/// The `i`-th storm spec: Figure 6b with a distinct `ppeak_gops`, so
/// every request has a distinct canonical key and the consistent-hash
/// ring spreads the storm across both shards.
fn storm_spec(i: usize) -> String {
    FIGURE_6B_SPEC.replace("ppeak_gops = 40", &format!("ppeak_gops = {}", 40 + i))
}

/// Exact nearest-rank quantile (1-based rank `⌈q·n⌉`), the same rule
/// [`QuantileSketch::quantile`] uses, so the ±α bound is testable.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[test]
fn fleet_slo_storm_aggregates_exactly_and_burns_budgets() {
    if quick() {
        return;
    }
    let server = ChildServer::spawn(&[
        "--replicas",
        "2",
        "--slo",
        "route=/v1/eval p99<1us",
        "--slo",
        "route=/v1/eval p99<60s err<50%",
    ]);
    let addr = server.addr;

    // Discover the shard children behind the router.
    let health = get_data(addr, "/v1/healthz?format=json");
    let shard_addrs: Vec<SocketAddr> = health
        .get("shards")
        .and_then(Json::as_array)
        .expect("shards listing")
        .iter()
        .map(|s| {
            s.get("addr")
                .and_then(Json::as_str)
                .expect("shard addr")
                .parse()
                .expect("parse shard addr")
        })
        .collect();
    assert_eq!(shard_addrs.len(), 2, "two shard children announced");

    // The storm: distinct specs so the hash ring spreads them.
    for i in 0..STORM {
        let (status, body) = http(addr, "POST", "/v1/eval", &storm_spec(i));
        assert!(
            status.starts_with("HTTP/1.1 200"),
            "eval {i}: {status} {body}"
        );
    }

    // Harvest the exact latencies from the fleet debug plane before
    // any further traffic can evict flight records.
    let listing = get_data(addr, &format!("/v1/debug/requests?n={}", STORM * 4));
    let capacity = listing.get("capacity").and_then(Json::as_f64).unwrap() as usize;
    assert!(
        STORM <= capacity / 2,
        "storm ({STORM}) must fit one shard's flight ring (fleet capacity {capacity})"
    );
    assert_eq!(
        listing.get("shards").and_then(Json::as_f64),
        Some(2.0),
        "merged listing reports its shard count"
    );
    let mut latencies: Vec<u64> = listing
        .get("requests")
        .and_then(Json::as_array)
        .expect("requests array")
        .iter()
        .filter(|r| r.get("route").and_then(Json::as_str) == Some("/v1/eval"))
        .map(|r| {
            r.get("latency_us")
                .and_then(Json::as_f64)
                .expect("latency_us") as u64
        })
        .collect();
    assert_eq!(latencies.len(), STORM, "every storm request was retained");
    latencies.sort_unstable();

    // Parent view first, then the shards directly: /v1/eval traffic is
    // quiescent now, so the cumulative state cannot drift in between.
    let fleet = get_data(addr, "/v1/slo");
    let fleet_snapshot = SloSnapshot::from_json(&fleet).expect("parent snapshot decodes");
    let fleet_eval = fleet_snapshot
        .routes
        .iter()
        .find(|(route, _)| route == "/v1/eval")
        .map(|(_, slo)| slo)
        .expect("/v1/eval route in parent snapshot");
    assert_eq!(fleet_eval.total, STORM as u64);
    assert_eq!(fleet_eval.errors, 0);

    // (a) The parent's merged sketch is bit-identical to the merge of
    // the per-shard snapshots fetched straight from the children.
    let mut union = SloSnapshot::empty();
    for &shard in &shard_addrs {
        let snapshot =
            SloSnapshot::from_json(&get_data(shard, "/v1/slo")).expect("shard snapshot decodes");
        let eval_total = snapshot
            .routes
            .iter()
            .find(|(route, _)| route == "/v1/eval")
            .map(|(_, slo)| slo.total)
            .unwrap_or(0);
        assert!(eval_total > 0, "the hash ring spread the storm to {shard}");
        assert!(union.merge(&snapshot), "shard snapshots are compatible");
    }
    let union_eval = union
        .routes
        .iter()
        .find(|(route, _)| route == "/v1/eval")
        .map(|(_, slo)| slo)
        .expect("/v1/eval route in shard union");
    assert_eq!(union_eval.total, STORM as u64);
    assert_eq!(
        fleet_eval.cumulative.to_bytes(),
        union_eval.cumulative.to_bytes(),
        "parent merge is bit-identical to a direct shard merge"
    );

    // (b) ... and to a union-stream sketch rebuilt from the exact
    // per-request latencies (merge order must not matter).
    let mut replay = QuantileSketch::new(fleet_snapshot.alpha_ppm);
    for &latency in &latencies {
        replay.record(latency);
    }
    assert_eq!(
        fleet_eval.cumulative.to_bytes(),
        replay.to_bytes(),
        "merged sketch is bit-identical to the union-stream sketch"
    );

    // Sketch quantiles honor the ±α relative-error bound against the
    // exact nearest-rank quantiles of the recorded stream.
    let alpha = f64::from(fleet_snapshot.alpha_ppm) / 1e6;
    for q in [0.5, 0.9, 0.99] {
        let exact = exact_quantile(&latencies, q) as f64;
        let estimate = fleet_eval.cumulative.quantile(q).expect("quantile");
        assert!(
            (estimate - exact).abs() <= alpha * exact + 1e-6,
            "p{q}: estimate {estimate} vs exact {exact} exceeds α={alpha}"
        );
    }

    // Burn rates: the 1 µs objective is unmeetable (every eval takes
    // longer), so its 1-minute burn must exceed 1.0; the generous
    // objectives stay within budget.
    let slos = fleet.get("slos").and_then(Json::as_array).expect("slos");
    let entry = |label: &str| -> &Json {
        slos.iter()
            .find(|s| s.get("objective").and_then(Json::as_str) == Some(label))
            .unwrap_or_else(|| panic!("objective {label} in slos"))
    };
    let minute = |label: &str, key: &str| -> f64 {
        entry(label)
            .get("windows")
            .and_then(Json::as_array)
            .unwrap()[0]
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{label} windows[0].{key}"))
    };
    let minute_ok = |label: &str| -> bool {
        entry(label)
            .get("windows")
            .and_then(Json::as_array)
            .unwrap()[0]
            .get("ok")
            .and_then(Json::as_bool)
            .expect("windows[0].ok")
    };
    assert!(minute("p99<1us", "burn_rate") > 1.0, "tight SLO is burning");
    assert!(!minute_ok("p99<1us"));
    assert!(
        minute("p99<60s", "burn_rate") <= 1.0,
        "lax latency SLO holds"
    );
    assert!(minute_ok("p99<60s"));
    assert!(
        minute("err<50%", "burn_rate") <= 1.0,
        "no 5xx: error SLO holds"
    );
    assert!(minute_ok("err<50%"));

    // The Prometheus view of the same aggregation.
    let (status, prom) = http(addr, "GET", "/v1/slo?format=prom", "");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    for needle in [
        "gables_slo_shards 2",
        "gables_route_latency_quantile_seconds{route=\"/v1/eval\",window=\"1m\",quantile=\"0.99\"}",
        "gables_route_error_rate{route=\"/v1/eval\",window=\"1m\"} 0",
        "gables_slo_burn_rate{route=\"/v1/eval\",objective=\"p99<1us\"",
        "gables_slo_ok{route=\"/v1/eval\",objective=\"p99<1us\"} 0",
        "gables_slo_ok{route=\"/v1/eval\",objective=\"err<50%\"} 1",
    ] {
        assert!(
            prom.contains(needle),
            "prom exposition missing {needle:?}:\n{prom}"
        );
    }

    // A client-side fault storm (garbage bytes, slowloris, truncated
    // bodies, ...) must neither crash the router nor poison the SLO
    // plane: every fault resolves acceptably and the fleet stays
    // healthy.
    for case in FaultSchedule::new(0xDECAF).cases(12) {
        let report = case
            .inject(addr, Duration::from_secs(10))
            .expect("inject fault");
        assert!(report.acceptable(), "fault left a bad outcome: {report:?}");
    }
    let (status, _) = http(addr, "GET", "/v1/healthz", "");
    assert!(
        status.starts_with("HTTP/1.1 200"),
        "fleet healthy after faults: {status}"
    );

    server.stop();
}

#[test]
fn shard_pinning_forwards_and_rejects_out_of_range_indices() {
    let server = ChildServer::spawn(&["--replicas", "2"]);
    let addr = server.addr;

    for i in 0..4 {
        let (status, _) = http(addr, "POST", "/v1/eval", &storm_spec(i));
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    }

    // A pinned shard answers with its own (untagged, unmerged) doc.
    let pinned = get_data(addr, "/v1/debug/requests?n=8&shard=0");
    assert!(pinned.get("shards").is_none(), "pinned doc is not merged");
    assert!(pinned.get("requests").and_then(Json::as_array).is_some());

    // The merged listing tags every record with its shard index.
    let merged = get_data(addr, "/v1/debug/requests?n=8");
    assert_eq!(merged.get("shards").and_then(Json::as_f64), Some(2.0));
    for record in merged.get("requests").and_then(Json::as_array).unwrap() {
        let shard = record
            .get("shard")
            .and_then(Json::as_f64)
            .expect("shard tag");
        assert!(shard == 0.0 || shard == 1.0, "shard tag in range: {shard}");
    }

    // Out-of-range pins are a 422 on both fleet debug routes.
    for target in [
        "/v1/debug/requests?shard=2",
        "/v1/debug/profile?seconds=0.01&shard=2",
    ] {
        let (status, body) = http(addr, "GET", target, "");
        assert!(status.starts_with("HTTP/1.1 422"), "{target}: {status}");
        assert!(body.contains("invalid_parameter"), "{target}: {body}");
    }

    server.stop();
}
