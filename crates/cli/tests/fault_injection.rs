//! Fault injection against a real `gables serve` router: the
//! deterministic [`FaultSchedule`] plays every adversarial client
//! behaviour (garbage, truncation, slow-loris, duplicate
//! `Content-Length`, header floods, body-length lies, mid-response
//! disconnects) against a live server, plus an induced handler panic.
//! After the whole storm the server must still answer `/v1/healthz`,
//! report zero *uncaught* worker deaths, and reconcile its metrics.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gables_cli::serve::build_router;
use gables_serve::faults::{FaultKind, FaultSchedule};
use gables_serve::{Response, Server, ServerConfig, ServerHandle, ShardedCache};

/// Starts the full Gables router plus a deliberately panicking test
/// route, with a short read timeout so stalling faults resolve quickly.
fn start_server() -> (ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(4, 32))).route(
        "POST",
        "/v1/boom",
        |_| -> Response { panic!("induced handler panic for fault injection") },
    );
    let join = std::thread::spawn(move || server.run(router).expect("server run"));
    (handle, join)
}

fn raw_exchange(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fault_storm_never_produces_a_success_a_panic_or_a_dead_worker() {
    let (handle, join) = start_server();
    let addr = handle.addr();

    // Three full rounds of every fault kind, reproducible from the seed.
    let mut schedule = FaultSchedule::new(0x9E3779B97F4A7C15);
    let cases = schedule.cases(3 * FaultKind::ALL.len());
    let total_cases = cases.len();
    // Mid-response disconnects are *valid* requests the server answers
    // (200) before discovering the client vanished; they land in the
    // 2xx counters even though the client never read a byte.
    let abandoned_oks = cases
        .iter()
        .filter(|c| c.kind == FaultKind::MidResponseDisconnect)
        .count() as u64;
    for (i, case) in cases.into_iter().enumerate() {
        let report = case
            .inject(addr, Duration::from_secs(10))
            .expect("connect for fault injection");
        assert!(
            report.acceptable(),
            "case {i} ({}, seed {:#x}): unacceptable reaction {:?}",
            case.kind.label(),
            case.seed,
            report.outcome
        );
    }

    // An induced handler panic is a structured 500 on that request...
    let reply = raw_exchange(
        addr,
        "POST /v1/boom HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
    assert!(reply.contains("\"code\":\"internal\""), "{reply}");

    // ...and the pool still serves real traffic afterwards: more
    // sequential probes than workers proves no worker died.
    for _ in 0..4 {
        let reply = raw_exchange(
            addr,
            "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }

    handle.shutdown();
    join.join().expect("graceful shutdown");

    let snapshot = handle.metrics().snapshot();
    assert_eq!(snapshot.panics, 1, "exactly the induced panic was caught");
    assert_eq!(snapshot.status_5xx, 1, "only the induced panic was a 5xx");
    assert_eq!(
        snapshot.status_2xx,
        4 + abandoned_oks,
        "health probes + abandoned-but-valid requests"
    );
    assert_eq!(snapshot.in_flight, 0, "the gauge settles after shutdown");
    // Every fault either produced a handled (non-2xx) response or was
    // abandoned by the client; nothing can exceed the traffic we sent.
    let sent = total_cases as u64 + 1 + 4;
    assert!(
        snapshot.handled <= sent,
        "handled {} exceeds requests sent {sent}",
        snapshot.handled
    );
    assert_eq!(
        snapshot.status_2xx + snapshot.status_4xx + snapshot.status_5xx,
        snapshot.handled
    );
}

#[test]
fn fault_schedules_replay_identically() {
    let a = FaultSchedule::new(42).cases(18);
    let b = FaultSchedule::new(42).cases(18);
    assert_eq!(a, b, "same seed must reproduce the same schedule");
}
