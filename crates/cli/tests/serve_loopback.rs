//! Loopback integration tests for `gables serve`: a real server on an
//! ephemeral port, driven by plain `TcpStream` clients.
//!
//! These are the acceptance tests for the serving tier: a thousand-plus
//! concurrent `/v1/eval` requests answer byte-identically to the CLI's
//! `eval` output, repeats hit the cache, a full queue sheds load with
//! `503` instead of hanging, sunset unversioned aliases answer `410
//! Gone`, and `/v1/metrics` reconciles with the traffic actually sent.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gables_cli::serve::build_router;
use gables_cli::spec::FIGURE_6B_SPEC;
use gables_model::json::Json;
use gables_serve::{Response, Server, ServerConfig, ServerHandle, ShardedCache};

/// Starts a fresh server (own metrics, own cache) on an ephemeral port.
fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(8, 128)));
    let join = std::thread::spawn(move || server.run(router).expect("server run"));
    (handle, join)
}

/// One full HTTP exchange; returns (status line, headers, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    // Read to EOF, tolerating a late reset: a backpressure 503 is written
    // without reading the request body, so closing that socket RSTs the
    // connection after the response bytes are already in our buffer.
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) if !bytes.is_empty() => {
                assert!(
                    e.kind() == std::io::ErrorKind::ConnectionReset,
                    "unexpected read error: {e}"
                );
                break;
            }
            Err(e) => panic!("read reply: {e}"),
        }
    }
    let reply = String::from_utf8(bytes).expect("UTF-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

#[test]
fn concurrent_eval_storm_is_byte_identical_and_metrics_reconcile() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 128;
    const TOTAL: usize = THREADS * PER_THREAD;

    let (handle, join) = start_server(ServerConfig {
        workers: 8,
        queue_depth: 1024,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let expected = gables_cli::eval_command(FIGURE_6B_SPEC).expect("CLI eval output");

    let mut clients = Vec::new();
    for t in 0..THREADS {
        let expected = expected.clone();
        clients.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                // Vary the spec cosmetically (comment only) so cache hits
                // prove canonicalization, not just string equality.
                let spec = format!("# probe {t}/{i}\n{FIGURE_6B_SPEC}");
                let (status, _, body) = request(addr, "POST", "/v1/eval?format=text", &spec);
                assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
                assert_eq!(body, expected, "response must match `gables eval` exactly");
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    let (status, _, body) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let envelope = Json::parse(&body).expect("metrics JSON");
    assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(true));
    let doc = envelope.get("data").expect("data field").clone();
    let num = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);

    // Every eval request was handled (the /metrics request itself is
    // counted only after its response is written, so it is not included).
    assert_eq!(num("handled"), TOTAL as f64);
    assert_eq!(num("status_2xx"), TOTAL as f64);
    assert_eq!(num("status_4xx"), 0.0);
    assert_eq!(num("status_5xx"), 0.0);
    assert_eq!(num("rejected"), 0.0);
    // The snapshot is taken inside the /metrics handler, whose own
    // request is the only one in flight.
    assert_eq!(num("in_flight"), 1.0);
    // Each eval request records exactly one cache outcome; with one
    // canonical spec, everything after the first computation hits.
    assert_eq!(num("cache_hits") + num("cache_misses"), TOTAL as f64);
    assert!(num("cache_hits") > 0.0, "repeats must hit the cache");
    assert!(num("cache_hit_rate") > 0.0);
    let routes = doc.get("routes").expect("routes object");
    assert_eq!(
        routes.get("/v1/eval").and_then(Json::as_f64),
        Some(TOTAL as f64)
    );
    // The latency histogram accounts for every handled request.
    let latency_total: f64 = doc
        .get("latency_us_log2")
        .and_then(Json::as_array)
        .expect("latency histogram")
        .iter()
        .map(|b| b.get("count").and_then(Json::as_f64).unwrap_or(0.0))
        .sum();
    assert_eq!(latency_total, TOTAL as f64);

    handle.shutdown();
    join.join().expect("graceful shutdown");
    // After shutdown the gauge settles back to zero.
    assert_eq!(handle.metrics().snapshot().in_flight, 0);
}

#[test]
fn json_eval_and_simulate_agree_on_the_bottleneck() {
    let (handle, join) = start_server(ServerConfig::default());
    let addr = handle.addr();

    let (status, _, body) = request(addr, "POST", "/v1/eval", FIGURE_6B_SPEC);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let envelope = Json::parse(&body).expect("eval JSON");
    assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(true));
    let eval = envelope.get("data").expect("data field");
    assert_eq!(
        eval.get("bottleneck").and_then(Json::as_str),
        Some("memory interface")
    );

    let (status, _, body) = request(addr, "POST", "/v1/simulate", FIGURE_6B_SPEC);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let envelope = Json::parse(&body).expect("simulate JSON");
    let sim = envelope.get("data").expect("data field");
    let jobs = sim.get("jobs").and_then(Json::as_array).expect("jobs");
    assert_eq!(jobs.len(), 2);
    // The analytical model says the SoC is memory-bound; the simulator's
    // dominant constraint for the heavy GPU job must agree (dram).
    let gpu = jobs
        .iter()
        .find(|j| j.get("name").and_then(Json::as_str) == Some("GPU"))
        .expect("GPU job");
    assert_eq!(
        gpu.get("dominant_bottleneck").and_then(Json::as_str),
        Some("dram")
    );

    handle.shutdown();
    join.join().expect("graceful shutdown");
}

#[test]
fn sunset_aliases_answer_410_gone_and_v1_routes_serve() {
    let (handle, join) = start_server(ServerConfig::default());
    let addr = handle.addr();

    // The unversioned aliases were sunset after their deprecation
    // window: a closed 410 with the successor in the Link header.
    let (status, headers, body) = request(addr, "POST", "/eval", FIGURE_6B_SPEC);
    assert_eq!(status, "HTTP/1.1 410 Gone", "{body}");
    assert!(
        headers.contains("Link: </v1/eval>; rel=\"successor-version\""),
        "{headers}"
    );
    let envelope = Json::parse(&body).expect("410 envelope");
    assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        envelope
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("endpoint_gone")
    );

    let (status, headers, v1_body) = request(addr, "POST", "/v1/eval", FIGURE_6B_SPEC);
    assert_eq!(status, "HTTP/1.1 200 OK", "{v1_body}");
    assert!(!headers.contains("Deprecation"), "{headers}");

    // The health probe is sunset the same way.
    let (status, headers, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 410 Gone");
    assert!(
        headers.contains("Link: </v1/healthz>; rel=\"successor-version\""),
        "{headers}"
    );
    let (status, headers, body) = request(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");
    assert!(!headers.contains("Deprecation"), "{headers}");

    // Errors carry the envelope with a stable code.
    let (status, _, body) = request(addr, "POST", "/v1/eval", "");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let envelope = Json::parse(&body).expect("error envelope");
    assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        envelope
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    handle.shutdown();
    join.join().expect("graceful shutdown");
}

#[test]
fn full_queue_answers_503_immediately_instead_of_hanging() {
    // One worker, one queue slot. Under the event loop idle connections
    // cost nothing, so saturation needs real work: a deliberately slow
    // route pins the worker while a second request fills the queue slot;
    // a third must then be shed from the event loop immediately.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(8, 128))).route(
        "POST",
        "/v1/slow",
        |_| {
            std::thread::sleep(Duration::from_millis(1500));
            Response::text(200, "done")
        },
    );
    let join = std::thread::spawn(move || server.run(router).expect("server run"));
    let addr = handle.addr();

    let stallers: Vec<_> = (0..2)
        .map(|_| {
            let t = std::thread::spawn(move || request(addr, "POST", "/v1/slow", ""));
            std::thread::sleep(Duration::from_millis(300));
            t
        })
        .collect();

    let start = Instant::now();
    let (status, headers, body) = request(addr, "POST", "/v1/eval", FIGURE_6B_SPEC);
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "backpressure must answer immediately, not wait out the stalled worker"
    );
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable", "{body}");
    assert!(headers.contains("Retry-After: 1"), "{headers}");
    assert!(body.contains("queue is full"), "{body}");
    assert!(handle.metrics().snapshot().rejected >= 1);

    // Both stalled requests still complete normally once the worker frees.
    for staller in stallers {
        let (status, _, body) = staller.join().expect("staller thread");
        assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    }

    handle.shutdown();
    join.join().expect("graceful shutdown");
}
