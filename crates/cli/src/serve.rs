//! The `gables serve` subcommand: Gables-specific endpoints on top of
//! the generic `gables-serve` infrastructure.
//!
//! ## The v1 API
//!
//! Canonical routes live under `/v1/` (HTTP/1.1 with keep-alive and
//! pipelining, JSON by default, `?format=text` for the plain CLI
//! output). `GET /v1` returns a machine-readable index of everything
//! below — routes, methods, query parameters, and the closed
//! error-code vocabulary:
//!
//! * `POST /v1/eval` — spec text in the body → attainment + bottleneck.
//!   With `?format=text` the body is byte-identical to `gables eval`.
//! * `POST /v1/batch` — many specs in one JSON body (`{"specs":
//!   [...]}` or a bare array of spec strings) → one envelope whose
//!   `items` array holds, in order, *exactly* the envelope each spec
//!   would have produced as a single `POST /v1/eval` — per-item error
//!   codes included, so one bad spec never fails the batch. Items are
//!   spliced into a single write buffer, and each item runs under a
//!   `batch` span in the flight record.
//! * `POST /v1/sweep` — ERT-style sweep; `?param=f|bpeak|intensity`,
//!   `?from=`, `?to=`, `?steps=` (defaults sweep intensity 0.25..64).
//!   Grid points are evaluated in parallel (`gables_model::par`), with
//!   output bit-identical to the serial CLI.
//! * `POST /v1/whatif` — JSON body `{"spec": ..., "edits": ...}` → the
//!   what-if delta report.
//! * `POST /v1/simulate` — spec text in the body → a soc-sim run with
//!   per-job bottleneck attribution.
//! * `POST /v1/carm` — spec text with `[cache.<level>]` sections → the
//!   cache-aware roofline: measured ceiling ladder, knee intensities,
//!   and the binding level per sweep point. With `?format=text` the
//!   body is byte-identical to `gables carm`.
//! * `GET /v1/metrics` — request counters, latency histogram, cache hit
//!   rate; `?format=text` renders an ASCII histogram, `?format=prom`
//!   the Prometheus text exposition (with `uptime_seconds` and
//!   `build_info`).
//! * `GET /v1/healthz` — liveness probe; plain `ok` by default
//!   (byte-identical for existing probes), `?format=json` adds uptime,
//!   version, in-flight count, and worker-pool saturation.
//! * `GET /v1/slo` — per-route streaming latency quantiles (DDSketch,
//!   [`gables_model::sketch`]) over 1m/5m/1h windows plus the
//!   cumulative sketch, error rates, and the error-budget burn rate of
//!   every `--slo 'route=/v1/eval p99<2ms err<0.1%'` definition.
//!   `?format=prom` renders `gables_slo_*` gauges and quantile series.
//! * `GET /v1/debug/requests` — the flight recorder: the last N
//!   requests with id, route, status, latency, cache outcome, and span
//!   summary (`?n=` limits, `?id=` fetches one with full spans,
//!   `?id=...&format=trace` exports Chrome trace-event JSON for
//!   `chrome://tracing`, `?id=...&format=text` an ASCII span tree).
//! * `GET /v1/debug/profile` — runs the in-process sampling profiler
//!   for `?seconds=` (default 1, capped) and returns a collapsed-stack
//!   profile (`?format=folded`, flamegraph.pl compatible) or a JSON
//!   document (`?format=json`). One session at a time (409 `conflict`
//!   while busy); invalid parameters get a 422 `unprocessable`.
//!
//! Every request is traced: the server opens a `server.request` span
//! (trace ID derived from `X-Request-Id`), the route layer nests the
//! handler span (`eval`, `sweep`, …), and `gables_model::par` worker
//! chunks nest under those — see `gables_model::obs`.
//!
//! The original unversioned paths (`/eval`, `/sweep`, …) carried
//! `Deprecation: true` for one release; that sunset has now executed.
//! They answer `410 Gone` with the closed `endpoint_gone` error code
//! and a `Link: </v1/...>; rel="successor-version"` header naming the
//! canonical route — a stable, machine-readable redirect, not a silent
//! removal.
//!
//! ## Replicas
//!
//! `gables serve --replicas N` runs N shared-nothing shard processes,
//! each with its own event loop, worker pool, LRU cache, flight
//! recorder, and Prometheus registry. The parent process is a router:
//! it parses each spec just enough to compute the canonical cache key
//! ([`Spec::canonical_key`]) and consistent-hashes it onto a shard, so
//! identical specs always land on the same shard's cache.
//! `/v1/metrics`, `/v1/healthz`, and `/v1/slo` aggregate across every
//! shard (quantile sketches merge exactly, so fleet quantiles are
//! bit-identical to a single sketch fed the union stream), and
//! `/v1/debug/requests` interleaves every shard's flight ring into one
//! fleet timeline ordered by wall-clock completion, each record tagged
//! with its shard index. `?shard=i` pins either debug route to one
//! shard (422 when the index is out of range). Shard children are
//! supervised over pipes: each announces `LISTENING <addr>` on stdout
//! and exits when its stdin reaches EOF, so no shard can outlive its
//! parent.
//!
//! Every JSON response uses the envelope documented in [`gables_serve`]:
//! `{"ok": true, "data": ..., "error": null}` on success and
//! `{"ok": false, "data": null, "error": {"code", "message"}}` on
//! failure, with the closed error-code set mapped from the HTTP status.
//! `?format=text` responses are the raw CLI text, no envelope.
//!
//! `POST` bodies are either carrier of [`Spec`]: raw spec text, or a
//! JSON object with a `"spec"` field (spec files start with `#` or `[`,
//! so the two are unambiguous). Successful responses are cached in a
//! sharded LRU keyed by the canonical `/v1` route, the query, and
//! [`Spec::canonical_key`], so re-evaluating the same design — the
//! common dashboard-polling case — skips parsing and evaluation
//! entirely, and an alias request primes the cache for the v1 route
//! (and vice versa).

use std::sync::Arc;
use std::time::Instant;

use gables_model::json::Json;
use gables_model::{evaluate, obs};
use gables_serve::{
    FlightRecorder, Request, Response, Router, Server, ServerConfig, ServerMetrics, ShardedCache,
    SloSnapshot, SloSpec,
};

use crate::spec::{Spec, SpecError};
use crate::{eval_command, sweep_command_with, whatif_command};

/// Version string stamped into `build_info` and `/v1/healthz?format=json`.
const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Parsed `gables serve` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen address, default `127.0.0.1:7878`.
    pub addr: String,
    /// Worker threads, default 4.
    pub workers: usize,
    /// Shard processes behind a routing parent; 1 means serve in-process.
    pub replicas: usize,
    /// Supervised mode: print `LISTENING <addr>` on stdout once bound
    /// and shut down when stdin reaches EOF (how replica shards — and
    /// tests — manage server lifetime).
    pub announce: bool,
    /// SLO definitions (`--slo 'route=/v1/eval p99<2ms err<0.1%'`,
    /// repeatable), evaluated by `GET /v1/slo`.
    pub slos: Vec<SloSpec>,
}

/// Parses `[addr] [--workers N] [--replicas N] [--slo DEF]...
/// [--announce]`.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown flags, a malformed count, or an
/// unparsable SLO definition.
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, SpecError> {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".to_string(),
        workers: 4,
        replicas: 1,
        announce: false,
        slos: Vec::new(),
    };
    let mut it = args.iter();
    let mut addr_seen = false;
    let positive = |flag: &str, n: &str| -> Result<usize, SpecError> {
        let v: usize = n
            .parse()
            .map_err(|_| SpecError::general(format!("{flag}: {n:?} is not a positive integer")))?;
        if v == 0 {
            return Err(SpecError::general(format!("{flag} must be at least 1")));
        }
        Ok(v)
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let n = it
                    .next()
                    .ok_or_else(|| SpecError::general("--workers needs a count"))?;
                opts.workers = positive("--workers", n)?;
            }
            "--replicas" => {
                let n = it
                    .next()
                    .ok_or_else(|| SpecError::general("--replicas needs a count"))?;
                opts.replicas = positive("--replicas", n)?;
            }
            "--slo" => {
                let text = it.next().ok_or_else(|| {
                    SpecError::general(
                        "--slo needs a definition, e.g. 'route=/v1/eval p99<2ms err<0.1%'",
                    )
                })?;
                opts.slos.push(
                    SloSpec::parse(text).map_err(|e| SpecError::general(format!("--slo: {e}")))?,
                );
            }
            "--announce" => opts.announce = true,
            other if other.starts_with('-') => {
                return Err(SpecError::general(format!(
                    "unknown serve flag {other:?} (only --workers <n>, --replicas <n>, \
                     --slo <def>, --announce)"
                )))
            }
            other => {
                if addr_seen {
                    return Err(SpecError::general(format!(
                        "unexpected extra argument {other:?}"
                    )));
                }
                opts.addr = other.to_string();
                addr_seen = true;
            }
        }
    }
    Ok(opts)
}

/// `gables serve [addr] [--workers N] [--replicas N]`: bind, log the
/// listen address, and serve until the process is killed (or, with
/// `--announce`, until stdin reaches EOF).
///
/// # Errors
///
/// Returns [`SpecError`] for bad arguments, a failed bind, or a failed
/// shard spawn.
pub fn serve_command(args: &[String]) -> Result<String, SpecError> {
    let opts = parse_serve_args(args)?;
    // A long-running server narrates its lifecycle and access log at
    // info by default; an explicit `--log` or `GABLES_LOG` still wins.
    if !obs::level_is_explicit() && std::env::var_os("GABLES_LOG").is_none() {
        obs::set_level(Some(obs::Level::Info));
    }
    if opts.replicas > 1 {
        return run_replicated(&opts);
    }
    let config = ServerConfig {
        workers: opts.workers,
        ..ServerConfig::default()
    };
    let server = Server::bind(opts.addr.as_str(), config)
        .map_err(|e| SpecError::general(format!("bind {}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| SpecError::general(e.to_string()))?;
    let state = ServeState::new(
        server.metrics(),
        Arc::new(ShardedCache::new(8, 128)),
        server.flight(),
        opts.workers,
    )
    .with_slos(opts.slos.clone());
    let router = build_router_with(&state);
    obs::log(
        obs::Level::Info,
        "serve",
        "listening",
        &[
            ("addr", format!("http://{addr}").into()),
            ("workers", opts.workers.into()),
            ("slos", opts.slos.len().into()),
            ("version", VERSION.into()),
            (
                "routes",
                "GET /v1; POST /v1/{eval,batch,sweep,whatif,simulate,carm}; \
                 GET /v1/{metrics,healthz,slo,debug/requests,debug/profile}"
                    .into(),
            ),
        ],
    );
    if opts.announce {
        announce_and_watch(
            addr,
            server
                .handle()
                .map_err(|e| SpecError::general(e.to_string()))?,
        );
    }
    server
        .run(router)
        .map_err(|e| SpecError::general(e.to_string()))?;
    obs::log(obs::Level::Info, "serve", "shutdown complete", &[]);
    Ok(String::new())
}

/// Supervised-mode plumbing: print `LISTENING <addr>` so the spawner
/// can discover an ephemeral port, then watch stdin from a thread and
/// trigger a graceful shutdown when it reaches EOF — the pipe-based
/// lifetime contract that keeps a shard from outliving its parent.
fn announce_and_watch(addr: std::net::SocketAddr, handle: gables_serve::ServerHandle) {
    use std::io::Write as _;
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
    std::thread::spawn(move || {
        use std::io::Read as _;
        let mut stdin = std::io::stdin();
        let mut sink = [0u8; 256];
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        handle.shutdown();
    });
}

/// The route-layer handler shape: returns the raw data payload (JSON
/// text, or plain text under `?format=text`) or a complete error
/// response. The envelope is applied by the route layer, never here.
type GablesHandler = fn(&Request, &Spec, &str) -> Result<String, Response>;

/// Everything the route layer shares across requests: counters, the
/// response cache, the flight recorder, and enough static facts (worker
/// count, start time) to answer `/v1/healthz?format=json` and stamp
/// `uptime_seconds` into the Prometheus exposition.
#[derive(Debug, Clone)]
pub struct ServeState {
    /// The live request counters (shared with the server loop).
    pub metrics: Arc<ServerMetrics>,
    /// The sharded LRU response cache.
    pub cache: Arc<ShardedCache>,
    /// The flight recorder (shared with the server loop).
    pub flight: Arc<FlightRecorder>,
    /// Configured worker-pool size, for the saturation gauge.
    pub workers: usize,
    /// When this serving instance came up.
    pub started: Instant,
    /// SLO definitions evaluated by `GET /v1/slo` (none by default).
    pub slos: Arc<Vec<SloSpec>>,
}

impl ServeState {
    /// Assembles the shared state; `started` is stamped now.
    pub fn new(
        metrics: Arc<ServerMetrics>,
        cache: Arc<ShardedCache>,
        flight: Arc<FlightRecorder>,
        workers: usize,
    ) -> Self {
        Self {
            metrics,
            cache,
            flight,
            workers,
            started: Instant::now(),
            slos: Arc::new(Vec::new()),
        }
    }

    /// Attaches SLO definitions (builder-style; the default is none).
    #[must_use]
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = Arc::new(slos);
        self
    }

    fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Builds the Gables route table over shared metrics and cache with a
/// standalone flight recorder — the signature predating [`ServeState`],
/// kept for tests that only care about the endpoint behaviour.
pub fn build_router(metrics: Arc<ServerMetrics>, cache: Arc<ShardedCache>) -> Router {
    let workers = ServerConfig::default().workers;
    build_router_with(&ServeState::new(
        metrics,
        cache,
        Arc::new(FlightRecorder::new(64)),
        workers,
    ))
}

/// The sunset unversioned aliases: `(method, alias path, successor)`.
/// Each answers `410 Gone` with the closed `endpoint_gone` error code
/// and a `Link` header naming its `/v1` successor.
const SUNSET_ALIASES: &[(&str, &str, &str)] = &[
    ("POST", "/eval", "/v1/eval"),
    ("POST", "/sweep", "/v1/sweep"),
    ("POST", "/whatif", "/v1/whatif"),
    ("POST", "/simulate", "/v1/simulate"),
    ("POST", "/carm", "/v1/carm"),
    ("GET", "/metrics", "/v1/metrics"),
    ("GET", "/healthz", "/v1/healthz"),
];

/// The `410 Gone` answer for a sunset alias.
fn gone(v1_path: &str) -> Response {
    Response::error(
        410,
        &format!("this unversioned endpoint has been sunset; use {v1_path}"),
    )
    .with_header("Link", format!("<{v1_path}>; rel=\"successor-version\""))
}

/// Builds the Gables route table over the shared [`ServeState`]: the
/// `GET /v1` discovery index, the canonical `/v1/*` routes, and the
/// `410 Gone` tombstones for the sunset unversioned aliases. Public so
/// tests can run the server on an ephemeral port.
pub fn build_router_with(state: &ServeState) -> Router {
    let healthz_state = state.clone();
    let debug_state = state.clone();
    let metrics_state = state.clone();
    let slo_state = state.clone();
    let batch_metrics = Arc::clone(&state.metrics);
    let batch_cache = Arc::clone(&state.cache);
    let mut router = Router::new()
        .route("GET", "/v1", |_| discovery_response())
        .route("GET", "/v1/healthz", move |req| {
            healthz_response(req, &healthz_state)
        })
        .route("GET", "/v1/slo", move |req| slo_response(req, &slo_state))
        .route("GET", "/v1/debug/requests", move |req| {
            debug_requests_response(req, &debug_state)
        })
        .route("GET", "/v1/debug/profile", debug_profile_response)
        .route("GET", "/v1/metrics", move |req| {
            let snapshot = metrics_state.metrics.snapshot();
            if req.query_param("format") == Some("prom") {
                let mut body = snapshot.to_prometheus(metrics_state.uptime_seconds(), VERSION);
                body.push_str(&gables_model::prof::prometheus_text());
                let mut resp = Response::text(200, body);
                resp.content_type = "text/plain; version=0.0.4; charset=utf-8".to_string();
                resp
            } else if wants_text(req) {
                Response::text(200, snapshot.to_text())
            } else {
                Response::json(200, envelope(&snapshot.to_json()))
            }
        })
        .route("POST", "/v1/batch", move |req| {
            batch_response(req, &batch_metrics, &batch_cache)
        });
    for (name, handler) in [
        ("eval", eval_handler as GablesHandler),
        ("sweep", sweep_handler),
        ("whatif", whatif_handler),
        ("simulate", simulate_handler),
        ("carm", carm_handler),
    ] {
        let v1_path = format!("/v1/{name}");
        let v1 = v1_path.clone();
        let metrics = Arc::clone(&state.metrics);
        let cache = Arc::clone(&state.cache);
        router = router.route("POST", &v1_path, move |req| {
            handle_post(&v1, handler, &metrics, &cache, req)
        });
    }
    for (method, alias, v1) in SUNSET_ALIASES {
        router = router.route(method, alias, move |_| gone(v1));
    }
    router
}

/// `GET /v1/healthz`: plain `ok` by default — byte-identical to the
/// pre-observability response so existing probes keep matching — or a
/// JSON status document under `?format=json`.
fn healthz_response(req: &Request, state: &ServeState) -> Response {
    if req.query_param("format") != Some("json") {
        return Response::text(200, "ok\n");
    }
    let snapshot = state.metrics.snapshot();
    let workers = state.workers.max(1);
    let doc = Json::Object(vec![
        ("status".into(), Json::str("ok")),
        ("version".into(), Json::str(VERSION)),
        ("uptime_seconds".into(), Json::num(state.uptime_seconds())),
        ("in_flight".into(), Json::num(snapshot.in_flight as f64)),
        ("workers".into(), Json::num(state.workers as f64)),
        (
            "worker_saturation".into(),
            Json::num(snapshot.in_flight as f64 / workers as f64),
        ),
    ]);
    Response::json(200, envelope(&doc.to_string()))
}

/// `GET /v1/slo`: windowed latency quantiles, error rates, and the
/// error-budget burn rate of every configured `--slo` definition, from
/// this process's own [`gables_serve::SloRegistry`]. JSON by default
/// (the mergeable sketch core plus derived quantile/burn sections);
/// `?format=prom` renders `gables_slo_*` gauges and quantile series.
fn slo_response(req: &Request, state: &ServeState) -> Response {
    let snapshot = state.metrics.slo().snapshot();
    slo_render(req, &snapshot, &state.slos, 1)
}

/// Renders an SLO snapshot (local or fleet-merged) in the requested
/// format. `shards` stamps how many sources the snapshot aggregates.
fn slo_render(req: &Request, snapshot: &SloSnapshot, specs: &[SloSpec], shards: usize) -> Response {
    use gables_serve::slo::{render_slo_json, render_slo_prometheus};
    if req.query_param("format") == Some("prom") {
        let mut resp = Response::text(200, render_slo_prometheus(snapshot, specs, shards));
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8".to_string();
        resp
    } else {
        Response::json(200, envelope(&render_slo_json(snapshot, specs, shards)))
    }
}

/// The route descriptors behind `GET /v1`: method, path, recognized
/// query parameters, one-line summary. This table *is* the API surface;
/// `discovery_routes_match_the_router` keeps it honest against the
/// actual route table.
const V1_ROUTE_DOCS: &[(&str, &str, &[&str], &str)] = &[
    ("GET", "/v1", &[], "this discovery document"),
    (
        "POST",
        "/v1/eval",
        &["format"],
        "evaluate a spec: attainable performance and the binding bottleneck",
    ),
    (
        "POST",
        "/v1/batch",
        &[],
        "evaluate many specs in one body; ordered per-item envelopes",
    ),
    (
        "POST",
        "/v1/sweep",
        &["param", "from", "to", "steps", "format"],
        "sweep f, bpeak, or intensity over a grid",
    ),
    (
        "POST",
        "/v1/whatif",
        &["format"],
        "apply edits to a spec and report the delta",
    ),
    (
        "POST",
        "/v1/simulate",
        &["format"],
        "cycle-level simulation with per-job bottleneck attribution",
    ),
    (
        "POST",
        "/v1/carm",
        &["format"],
        "cache-aware roofline: measured per-level ceiling ladder",
    ),
    (
        "GET",
        "/v1/metrics",
        &["format"],
        "request counters, latency histogram, cache hit rate",
    ),
    ("GET", "/v1/healthz", &["format"], "liveness probe"),
    (
        "GET",
        "/v1/slo",
        &["format"],
        "windowed latency quantiles, error rates, and SLO burn rates",
    ),
    (
        "GET",
        "/v1/debug/requests",
        &["n", "id", "format", "shard"],
        "flight recorder: recent requests with span trees",
    ),
    (
        "GET",
        "/v1/debug/profile",
        &["seconds", "format", "shard"],
        "run the sampling profiler and return the profile",
    ),
];

/// Error kinds minted by the route layer itself (not the model or the
/// spec parser): fine-grained `kind` codes that appear in error
/// envelopes alongside the transport `code`.
const ROUTE_ERROR_KINDS: &[&str] = &["invalid_parameter", "profile_in_progress"];

/// `GET /v1`: the machine-readable API index — every route with its
/// methods and query parameters, the sunset aliases with their
/// successors, and the closed error-code vocabulary. The transport
/// codes come from [`Response::ERROR_CODES`] and the kinds from
/// [`gables_model::ErrorKind::code`] (plus the spec parser's and the
/// route layer's own), so the document can never drift from what the
/// server actually emits.
fn discovery_response() -> Response {
    let routes = Json::Array(
        V1_ROUTE_DOCS
            .iter()
            .map(|(method, path, params, summary)| {
                Json::Object(vec![
                    ("method".into(), Json::str(*method)),
                    ("path".into(), Json::str(*path)),
                    (
                        "params".into(),
                        Json::Array(params.iter().map(|p| Json::str(*p)).collect()),
                    ),
                    ("summary".into(), Json::str(*summary)),
                ])
            })
            .collect(),
    );
    let transport = Json::Array(
        Response::ERROR_CODES
            .iter()
            .map(|(status, code)| {
                Json::Object(vec![
                    ("code".into(), Json::str(*code)),
                    ("status".into(), Json::num(f64::from(*status))),
                ])
            })
            .collect(),
    );
    let mut kinds: Vec<&str> = gables_model::ErrorKind::ALL
        .iter()
        .map(|k| k.code())
        .collect();
    kinds.push(crate::spec::SPEC_PARSE_KIND);
    kinds.extend(ROUTE_ERROR_KINDS);
    kinds.sort_unstable();
    kinds.dedup();
    let sunset = Json::Array(
        SUNSET_ALIASES
            .iter()
            .map(|(method, alias, v1)| {
                Json::Object(vec![
                    ("method".into(), Json::str(*method)),
                    ("path".into(), Json::str(*alias)),
                    ("successor".into(), Json::str(*v1)),
                    ("status".into(), Json::num(410.0)),
                ])
            })
            .collect(),
    );
    let doc = Json::Object(vec![
        ("version".into(), Json::str(VERSION)),
        ("routes".into(), routes),
        (
            "error_codes".into(),
            Json::Object(vec![
                ("transport".into(), transport),
                (
                    "kinds".into(),
                    Json::Array(kinds.into_iter().map(Json::str).collect()),
                ),
            ]),
        ),
        ("sunset".into(), sunset),
    ]);
    Response::json(200, envelope(&doc.to_string()))
}

/// Most specs accepted in one `POST /v1/batch` body.
const MAX_BATCH_ITEMS: usize = 256;

/// `POST /v1/batch`: evaluate many specs in one request. The body is
/// `{"specs": [...]}` or a bare JSON array of spec strings; the
/// response `data` carries `count` and `items`, where `items[i]` is —
/// byte for byte — the envelope a single `POST /v1/eval` would have
/// produced for `specs[i]` (per-item error codes included, so one bad
/// spec never fails the batch). Items are spliced into one write
/// buffer, and each runs under a `batch` span so flight records show
/// the per-item timing.
fn batch_response(req: &Request, metrics: &ServerMetrics, cache: &ShardedCache) -> Response {
    let specs = match batch_specs(req) {
        Ok(specs) => specs,
        Err(resp) => return *resp,
    };
    let items: Vec<String> = specs
        .iter()
        .map(|spec_text| {
            let _item_span = obs::span("batch");
            let item_req = Request {
                method: "POST".into(),
                path: "/v1/eval".into(),
                query: None,
                headers: Vec::new(),
                body: spec_text.as_bytes().to_vec(),
            };
            let resp = handle_post("/v1/eval", eval_handler, metrics, cache, &item_req);
            String::from_utf8(resp.body).unwrap_or_default()
        })
        .collect();
    Response::json(200, envelope(&splice_batch_items(&items)))
}

/// Extracts the spec strings from a batch body, or the error response.
/// (Boxed so the happy path doesn't carry a `Response` by value.)
fn batch_specs(req: &Request) -> Result<Vec<String>, Box<Response>> {
    let body = req.body_str().map_err(|e| {
        Box::new(Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            &e.to_string(),
        ))
    })?;
    let doc = Json::parse(body).map_err(|_| {
        Box::new(Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            "batch body must be JSON: {\"specs\": [...]} or a bare array of spec strings",
        ))
    })?;
    let array = match &doc {
        Json::Array(items) => items,
        other => match other.get("specs") {
            Some(Json::Array(items)) => items,
            _ => {
                return Err(Box::new(Response::error_with_kind(
                    400,
                    Some("invalid_parameter"),
                    "batch body must be {\"specs\": [...]} or a bare array of spec strings",
                )))
            }
        },
    };
    if array.is_empty() {
        return Err(Box::new(Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            "batch needs at least one spec",
        )));
    }
    if array.len() > MAX_BATCH_ITEMS {
        return Err(Box::new(Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            &format!(
                "batch has {} items; the limit is {MAX_BATCH_ITEMS}",
                array.len()
            ),
        )));
    }
    array
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_str().map(str::to_string).ok_or_else(|| {
                Box::new(Response::error_with_kind(
                    400,
                    Some("invalid_parameter"),
                    &format!("batch item {i} must be a spec string"),
                ))
            })
        })
        .collect()
}

/// Splices pre-serialized per-item envelopes into the batch `data`
/// payload with one amortized allocation — no re-parsing, no
/// re-serialization, so item bytes are exactly what single requests
/// produce.
fn splice_batch_items(items: &[String]) -> String {
    let total: usize = items.iter().map(String::len).sum();
    let mut buf = String::with_capacity(total + items.len() + 48);
    buf.push_str("{\"count\":");
    buf.push_str(&items.len().to_string());
    buf.push_str(",\"items\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(item);
    }
    buf.push_str("]}");
    buf
}

/// Most records `GET /v1/debug/requests` returns in one listing.
const MAX_DEBUG_REQUESTS: usize = 1000;

/// `GET /v1/debug/requests`: the flight recorder. Without `?id=`, lists
/// the most recent `?n=` requests (newest first, default 32). With
/// `?id=`, returns that request with its full span list; `format=trace`
/// instead exports raw Chrome trace-event JSON (no envelope, ready for
/// `chrome://tracing`), and `format=text` an ASCII span tree.
fn debug_requests_response(req: &Request, state: &ServeState) -> Response {
    if let Some(id) = req.query_param("id") {
        let Some(record) = state.flight.find(id) else {
            return Response::error(404, &format!("no retained request with id {id:?}"));
        };
        return match req.query_param("format") {
            Some("trace") => Response::json(200, obs::chrome_trace_for_spans(&record.spans)),
            Some("text") => Response::text(
                200,
                format!(
                    "{} {} {} status={} latency_us={} spans={} dropped={}\n\n{}",
                    record.id,
                    record.method,
                    record.route,
                    record.status,
                    record.latency_us,
                    record.spans.len(),
                    record.spans_dropped,
                    gables_plot::render_span_tree(&record.spans),
                ),
            ),
            _ => Response::json(200, envelope(&record.to_json(true).to_string())),
        };
    }
    let n = match query_num(req, "n", 32.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if n.fract() != 0.0 || n < 1.0 || n > MAX_DEBUG_REQUESTS as f64 {
        return Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            &format!("query parameter n={n} must be an integer in 1..={MAX_DEBUG_REQUESTS}"),
        );
    }
    let records = state.flight.recent(n as usize);
    let doc = Json::Object(vec![
        ("capacity".into(), Json::num(state.flight.capacity() as f64)),
        (
            "recorded_total".into(),
            Json::num(state.flight.recorded_total() as f64),
        ),
        ("count".into(), Json::num(records.len() as f64)),
        (
            "requests".into(),
            Json::Array(records.iter().map(|r| r.to_json(false)).collect()),
        ),
    ]);
    Response::json(200, envelope(&doc.to_string()))
}

/// Longest profiling window `/v1/debug/profile` accepts, seconds. The
/// handler sleeps for the window on its worker thread, so the bound
/// keeps a debug request from pinning a worker indefinitely.
const MAX_PROFILE_SECONDS: f64 = 15.0;

/// `GET /v1/debug/profile`: runs the process-global sampling profiler
/// ([`gables_model::prof`]) for `?seconds=` (default 1, bounded) and
/// returns the aggregated profile — collapsed-stack text by default
/// (`?format=folded`, flamegraph.pl compatible, identical to what
/// `gables <cmd> --profile` writes) or a JSON document under
/// `?format=json`. Sessions are one-at-a-time: a concurrent request
/// gets a structured 409 `conflict`; out-of-range or non-numeric
/// parameters get a structured 422 `unprocessable`.
fn debug_profile_response(req: &Request) -> Response {
    use gables_model::prof;
    let seconds = match req.query_param("seconds") {
        None => 1.0,
        Some(raw) => match raw.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 && v <= MAX_PROFILE_SECONDS => v,
            _ => {
                return Response::error_with_kind(
                    422,
                    Some("invalid_parameter"),
                    &format!(
                        "query parameter seconds={raw:?} must be a finite number in \
                         (0, {MAX_PROFILE_SECONDS}]"
                    ),
                )
            }
        },
    };
    let format = req.query_param("format").unwrap_or("folded");
    if format != "folded" && format != "json" {
        return Response::error_with_kind(
            422,
            Some("invalid_parameter"),
            &format!("query parameter format={format:?} must be \"folded\" or \"json\""),
        );
    }
    let session = match prof::start(prof::SampleConfig::default()) {
        Ok(s) => s,
        Err(prof::ProfError::Busy) => {
            return Response::error_with_kind(
                409,
                Some("profile_in_progress"),
                "a profiling session is already running; retry after it finishes",
            )
        }
    };
    // The handler thread itself holds `server.request` / `dispatch`
    // spans, so even an idle server profiles to a non-empty stack set.
    std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
    let profile = session.stop();
    if format == "json" {
        Response::json(200, envelope(&profile.to_json().to_string()))
    } else {
        Response::text(200, profile.to_folded())
    }
}

/// Parses the body once into a [`Spec`], consults the cache (keyed by
/// the canonical v1 path so aliases share entries), and runs the
/// handler on a miss. The whole route runs inside a handler-named span
/// (`eval`, `sweep`, …) so worker spans from the parallel map nest under
/// it, and the cache outcome is reported out-of-band to the server loop
/// via an `X-Cache: hit|miss` response header (surfaced in the access
/// log and the flight recorder).
fn handle_post(
    v1_path: &str,
    handler: GablesHandler,
    metrics: &ServerMetrics,
    cache: &ShardedCache,
    req: &Request,
) -> Response {
    let _route_span = obs::span(v1_path.trim_start_matches("/v1/"));
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => {
            return Response::error_with_kind(
                400,
                Some(crate::spec::SPEC_PARSE_KIND),
                &e.to_string(),
            )
        }
    };
    let spec = {
        let _parse_span = obs::span("parse");
        match Spec::parse(body) {
            Ok(s) => s,
            Err(e) => return bad_request(&e),
        }
    };
    let key = format!(
        "{v1_path}|{}|{}|{}",
        req.query.as_deref().unwrap_or(""),
        if wants_text(req) { "text" } else { "json" },
        spec.canonical_key(),
    );
    if let Some(data) = cache.get(&key) {
        metrics.record_cache_hit();
        return finish(req, data).with_header("X-Cache", "hit");
    }
    metrics.record_cache_miss();
    match handler(req, &spec, body) {
        Ok(data) => {
            cache.insert(key, data.clone());
            finish(req, data).with_header("X-Cache", "miss")
        }
        Err(resp) => resp.with_header("X-Cache", "miss"),
    }
}

fn wants_text(req: &Request) -> bool {
    req.query_param("format") == Some("text")
}

/// Wraps a raw data payload in the success envelope. The payload is
/// already JSON text, so this is a splice, not a re-serialization.
fn envelope(data: &str) -> String {
    format!("{{\"ok\":true,\"data\":{data},\"error\":null}}")
}

fn finish(req: &Request, data: String) -> Response {
    if wants_text(req) {
        Response::text(200, data)
    } else {
        Response::json(200, envelope(&data))
    }
}

fn bad_request(e: &SpecError) -> Response {
    Response::error_with_kind(400, Some(e.code()), &e.to_string())
}

/// `POST /v1/eval`: with `?format=text`, exactly the `gables eval`
/// output; otherwise the structured summary plus that output.
fn eval_handler(req: &Request, spec: &Spec, body: &str) -> Result<String, Response> {
    let output = eval_command(body).map_err(|e| bad_request(&e))?;
    if wants_text(req) {
        return Ok(output);
    }
    let soc = spec.soc().map_err(|e| bad_request(&e))?;
    let workload = spec.workload().map_err(|e| bad_request(&e))?;
    let eval = evaluate(&soc, &workload).map_err(|e| bad_request(&SpecError::from(e)))?;
    Ok(Json::Object(vec![
        (
            "attainable_gops".into(),
            Json::num(eval.attainable().to_gops()),
        ),
        (
            "bottleneck".into(),
            Json::str(eval.bottleneck().to_string()),
        ),
        ("output".into(), Json::str(output)),
    ])
    .to_string())
}

fn query_num(req: &Request, key: &str, default: f64) -> Result<f64, Response> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => match raw.parse::<f64>() {
            // `f64::from_str` happily produces NaN/∞ from "nan", "inf",
            // and overflow literals like "1e400"; none of them is a
            // meaningful sweep bound, so close the hole at the query
            // boundary with the same closed error code as spec input.
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(Response::error_with_kind(
                400,
                Some("invalid_parameter"),
                &format!("query parameter {key}={raw:?} is not a finite number"),
            )),
        },
    }
}

/// Largest accepted `?steps=` grid. Enough for any plausible plot, small
/// enough that a hostile request cannot turn the sweep into a CPU sink
/// (`steps=inf` used to cast to `usize::MAX`).
const MAX_SWEEP_STEPS: usize = 100_000;

fn query_steps(req: &Request, default: usize) -> Result<usize, Response> {
    let raw = query_num(req, "steps", default as f64)?;
    if raw.fract() != 0.0 || raw < 1.0 || raw > MAX_SWEEP_STEPS as f64 {
        return Err(Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            &format!("query parameter steps={raw} must be an integer in 1..={MAX_SWEEP_STEPS}"),
        ));
    }
    Ok(raw as usize)
}

/// `POST /v1/sweep`: `?param=f|bpeak|intensity` with `from`/`to`/`steps`;
/// defaults to an ERT-style intensity sweep over 0.25..64 ops/byte. The
/// grid is evaluated under the `Auto` parallelism policy; the output is
/// bit-identical to the serial CLI by construction.
fn sweep_handler(req: &Request, _spec: &Spec, body: &str) -> Result<String, Response> {
    let param = req.query_param("param").unwrap_or("intensity");
    let from = query_num(req, "from", 0.25)?;
    let to = query_num(req, "to", 64.0)?;
    let steps = query_steps(req, 16)?;
    let output = sweep_command_with(
        body,
        param,
        from,
        to,
        steps,
        gables_model::Parallelism::Auto,
    )
    .map_err(|e| bad_request(&e))?;
    if wants_text(req) {
        return Ok(output);
    }
    Ok(Json::Object(vec![
        ("param".into(), Json::str(param)),
        ("output".into(), Json::str(output)),
    ])
    .to_string())
}

/// `POST /v1/whatif`: requires the JSON carrier with `"spec"` and
/// `"edits"`.
fn whatif_handler(req: &Request, spec: &Spec, body: &str) -> Result<String, Response> {
    let edits = spec.edits().ok_or_else(|| {
        Response::error(
            400,
            "whatif needs a JSON body with \"spec\" and \"edits\" fields, e.g. {\"spec\": \"...\", \"edits\": \"set_bpeak 30\"}",
        )
    })?;
    let output = whatif_command(body, edits).map_err(|e| bad_request(&e))?;
    if wants_text(req) {
        return Ok(output);
    }
    Ok(Json::Object(vec![
        ("edits".into(), Json::str(edits)),
        ("output".into(), Json::str(output)),
    ])
    .to_string())
}

/// `POST /v1/simulate`: run the spec's workload through the cycle-level
/// simulator and report per-job bottleneck attribution.
fn simulate_handler(_req: &Request, spec: &Spec, _body: &str) -> Result<String, Response> {
    use gables_soc_sim::telemetry::{BindingConstraint, NullRecorder};

    let soc = spec.soc().map_err(|e| bad_request(&e))?;
    let workload = spec.workload().map_err(|e| bad_request(&e))?;
    let names = spec.ip_names();
    let run = gables_soc_sim::run_gables_workload(&soc, &workload, &mut NullRecorder)
        .map_err(|e| Response::error(400, &e.to_string()))?;

    let jobs = Json::Array(
        run.jobs
            .iter()
            .map(|j| {
                let breakdown = Json::Object(
                    BindingConstraint::ALL
                        .iter()
                        .map(|&c| (c.label().to_string(), Json::num(j.breakdown.fraction(c))))
                        .collect(),
                );
                Json::Object(vec![
                    ("ip".into(), Json::num(j.ip as f64)),
                    (
                        "name".into(),
                        Json::str(
                            names
                                .get(j.ip)
                                .cloned()
                                .unwrap_or_else(|| format!("IP{}", j.ip)),
                        ),
                    ),
                    ("gflops".into(), Json::num(j.flops / 1e9)),
                    ("gbytes".into(), Json::num(j.bytes / 1e9)),
                    (
                        "dominant_bottleneck".into(),
                        Json::str(j.breakdown.dominant().label()),
                    ),
                    ("bottleneck_breakdown".into(), breakdown),
                ])
            })
            .collect(),
    );
    let doc = Json::Object(vec![
        ("makespan_seconds".into(), Json::num(run.makespan_seconds)),
        (
            "aggregate_gflops_per_sec".into(),
            Json::num(run.aggregate_flops_per_sec / 1e9),
        ),
        ("jobs".into(), jobs),
    ]);
    // The simulate report is JSON-native; ?format=text serves the same
    // document with a text/plain content type (finish() handles that).
    Ok(doc.to_string())
}

/// `POST /v1/carm`: spec text with `[cache.<level>]` sections → the
/// cache-aware roofline report. With `?format=text`, byte-identical to
/// `gables carm`; otherwise the structured ladder/sweep payload plus
/// that output. The ladder sweep runs through `par::try_map`, so the
/// payload is byte-identical across worker parallelism policies.
fn carm_handler(req: &Request, _spec: &Spec, body: &str) -> Result<String, Response> {
    let report = crate::carm::carm_report(body, gables_model::Parallelism::Auto)
        .map_err(|e| bad_request(&e))?;
    let output = crate::carm::render_text(&report);
    if wants_text(req) {
        return Ok(output);
    }
    let Json::Object(mut fields) = crate::carm::json_data(&report) else {
        unreachable!("carm json_data is always an object");
    };
    fields.push(("output".into(), Json::str(output)));
    Ok(Json::Object(fields).to_string())
}

// ---------------------------------------------------------------------------
// Replica sharding: a consistent-hash router in front of shard children.
// ---------------------------------------------------------------------------

/// Virtual nodes per shard on the consistent-hash ring. More points
/// smooth the key distribution across shards.
const RING_POINTS_PER_SHARD: usize = 64;

/// A consistent-hash ring over shard indices: each shard contributes
/// [`RING_POINTS_PER_SHARD`] points, and a key maps to the shard owning
/// the first point at or after the key's hash (wrapping). Adding or
/// removing one shard moves only ~1/N of the key space.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring for `shards` shard indices (`shards >= 1`).
    pub fn new(shards: usize) -> Self {
        let mut points = Vec::with_capacity(shards.max(1) * RING_POINTS_PER_SHARD);
        for shard in 0..shards.max(1) {
            for point in 0..RING_POINTS_PER_SHARD {
                points.push((obs::hash64(&format!("shard-{shard}-point-{point}")), shard));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// The shard index owning this key.
    pub fn shard_for(&self, key: &str) -> usize {
        let h = obs::hash64(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }
}

/// One supervised shard child: its announced address plus the process
/// and stdin handles that bound its lifetime to the parent's.
struct Shard {
    addr: String,
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
}

/// Renders a parsed SLO back to its canonical `--slo` text (the clause
/// labels round-trip through [`SloSpec::parse`]), so shard children are
/// spawned with the same definitions the parent evaluates.
fn slo_arg(spec: &SloSpec) -> String {
    let mut text = format!("route={}", spec.route);
    for objective in &spec.objectives {
        text.push(' ');
        text.push_str(&objective.label());
    }
    text
}

impl Shard {
    /// Spawns one shard on an ephemeral port and waits for its
    /// `LISTENING <addr>` announcement.
    fn spawn(workers: usize, slos: &[SloSpec]) -> Result<Self, SpecError> {
        use std::io::BufRead as _;
        let exe = std::env::current_exe()
            .map_err(|e| SpecError::general(format!("cannot locate own executable: {e}")))?;
        let mut args = vec![
            "serve".to_string(),
            "127.0.0.1:0".to_string(),
            "--workers".to_string(),
            workers.to_string(),
            "--announce".to_string(),
        ];
        for spec in slos {
            args.push("--slo".to_string());
            args.push(slo_arg(spec));
        }
        let mut child = std::process::Command::new(exe)
            .args(&args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| SpecError::general(format!("cannot spawn shard: {e}")))?;
        let stdin = child.stdin.take();
        let stdout = child
            .stdout
            .take()
            .expect("shard stdout was requested piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| SpecError::general(format!("shard announcement failed: {e}")))?;
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .ok_or_else(|| SpecError::general(format!("unexpected shard announcement {line:?}")))?
            .to_string();
        Ok(Self { addr, child, stdin })
    }

    /// Asks the shard to exit (stdin EOF) and reaps it, escalating to a
    /// kill if it ignores the contract.
    fn stop(&mut self) {
        drop(self.stdin.take());
        for _ in 0..30 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(100)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// `gables serve --replicas N`: spawn N shard children, then serve as a
/// consistent-hash router in front of them.
fn run_replicated(opts: &ServeOptions) -> Result<String, SpecError> {
    let mut shards = Vec::with_capacity(opts.replicas);
    for _ in 0..opts.replicas {
        shards.push(Shard::spawn(opts.workers, &opts.slos)?);
    }
    let addrs: Arc<Vec<String>> = Arc::new(shards.iter().map(|s| s.addr.clone()).collect());
    let ring = Arc::new(HashRing::new(opts.replicas));

    let config = ServerConfig {
        workers: opts.workers,
        ..ServerConfig::default()
    };
    let server = Server::bind(opts.addr.as_str(), config)
        .map_err(|e| SpecError::general(format!("bind {}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| SpecError::general(e.to_string()))?;
    let state = ServeState::new(
        server.metrics(),
        Arc::new(ShardedCache::new(8, 128)),
        server.flight(),
        opts.workers,
    )
    .with_slos(opts.slos.clone());
    let router = build_parent_router(&state, addrs, ring);
    obs::log(
        obs::Level::Info,
        "serve",
        "listening",
        &[
            ("addr", format!("http://{addr}").into()),
            ("replicas", opts.replicas.into()),
            ("workers", opts.workers.into()),
            ("version", VERSION.into()),
            (
                "shards",
                shards
                    .iter()
                    .map(|s| s.addr.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
                    .into(),
            ),
        ],
    );
    if opts.announce {
        announce_and_watch(
            addr,
            server
                .handle()
                .map_err(|e| SpecError::general(e.to_string()))?,
        );
    }
    let run_result = server.run(router);
    for shard in &mut shards {
        shard.stop();
    }
    run_result.map_err(|e| SpecError::general(e.to_string()))?;
    obs::log(obs::Level::Info, "serve", "shutdown complete", &[]);
    Ok(String::new())
}

/// Builds the parent (router) route table: spec-carrying `POST`s are
/// forwarded to the shard owning the spec's canonical key, `/v1/batch`
/// scatters per item and gathers in order, `/v1/metrics`,
/// `/v1/healthz`, and `/v1/slo` aggregate across shards, the debug
/// routes answer fleet-wide (or pinned with `?shard=`), and the
/// discovery document and alias tombstones answer locally.
fn build_parent_router(state: &ServeState, addrs: Arc<Vec<String>>, ring: Arc<HashRing>) -> Router {
    let healthz_addrs = Arc::clone(&addrs);
    let metrics_addrs = Arc::clone(&addrs);
    let slo_addrs = Arc::clone(&addrs);
    let requests_addrs = Arc::clone(&addrs);
    let profile_addrs = Arc::clone(&addrs);
    let metrics_state = state.clone();
    let slo_state = state.clone();
    let healthz_state = state.clone();
    let batch_addrs = Arc::clone(&addrs);
    let batch_ring = Arc::clone(&ring);
    let mut router = Router::new()
        .route("GET", "/v1", |_| discovery_response())
        .route("GET", "/v1/healthz", move |req| {
            aggregated_healthz(req, &healthz_addrs, &healthz_state)
        })
        .route("GET", "/v1/metrics", move |req| {
            aggregated_metrics(req, &metrics_addrs, &metrics_state)
        })
        .route("GET", "/v1/slo", move |req| {
            aggregated_slo(req, &slo_addrs, &slo_state)
        })
        .route("GET", "/v1/debug/requests", move |req| {
            fleet_debug_requests(req, &requests_addrs)
        })
        .route("GET", "/v1/debug/profile", move |req| {
            fleet_debug_profile(req, &profile_addrs)
        })
        .route("POST", "/v1/batch", move |req| {
            parent_batch_response(req, &batch_addrs, &batch_ring)
        });
    for name in ["eval", "sweep", "whatif", "simulate", "carm"] {
        let path = format!("/v1/{name}");
        let addrs = Arc::clone(&addrs);
        let ring = Arc::clone(&ring);
        let forward_path = path.clone();
        router = router.route("POST", &path, move |req| {
            route_to_shard(req, &forward_path, &addrs, &ring)
        });
    }
    for (method, alias, v1) in SUNSET_ALIASES {
        router = router.route(method, alias, move |_| gone(v1));
    }
    router
}

/// Forwards one spec-carrying `POST` to the shard that owns the spec's
/// canonical key. Bodies that don't parse are answered locally — the
/// same code path a shard would take, so the bytes are identical.
fn route_to_shard(
    req: &Request,
    path: &str,
    addrs: &Arc<Vec<String>>,
    ring: &Arc<HashRing>,
) -> Response {
    let _route_span = obs::span("shard.route");
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => {
            return Response::error_with_kind(
                400,
                Some(crate::spec::SPEC_PARSE_KIND),
                &e.to_string(),
            )
        }
    };
    let spec = match Spec::parse(body) {
        Ok(s) => s,
        Err(e) => return bad_request(&e),
    };
    let shard = ring.shard_for(spec.canonical_key());
    forward(&addrs[shard], req, path)
        .unwrap_or_else(|e| Response::error(503, &format!("shard {shard} unavailable: {e}")))
}

/// Parent-side `POST /v1/batch`: scatter each item to the shard owning
/// its canonical key (so every item hits the same shard cache a single
/// request would), gather in order, splice. Item bytes therefore match
/// `--replicas 1` and plain single-request serving exactly.
fn parent_batch_response(
    req: &Request,
    addrs: &Arc<Vec<String>>,
    ring: &Arc<HashRing>,
) -> Response {
    let specs = match batch_specs(req) {
        Ok(specs) => specs,
        Err(resp) => return *resp,
    };
    let items: Vec<String> = specs
        .iter()
        .map(|spec_text| {
            let _item_span = obs::span("batch");
            let item_req = Request {
                method: "POST".into(),
                path: "/v1/eval".into(),
                query: None,
                headers: Vec::new(),
                body: spec_text.as_bytes().to_vec(),
            };
            let resp = route_to_shard(&item_req, "/v1/eval", addrs, ring);
            String::from_utf8(resp.body).unwrap_or_default()
        })
        .collect();
    Response::json(200, envelope(&splice_batch_items(&items)))
}

/// Parent-side `GET /v1/metrics`: fetch every shard's JSON snapshot,
/// merge counter-wise, render in the requested format. The uptime and
/// version stamped into the Prometheus view are the parent's own.
fn aggregated_metrics(req: &Request, addrs: &Arc<Vec<String>>, state: &ServeState) -> Response {
    use gables_serve::MetricsSnapshot;
    let mut aggregate: Option<MetricsSnapshot> = None;
    for (i, addr) in addrs.iter().enumerate() {
        let shard_req = Request {
            method: "GET".into(),
            path: "/v1/metrics".into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        };
        let snapshot = forward(addr, &shard_req, "/v1/metrics")
            .ok()
            .filter(|resp| resp.status == 200)
            .and_then(|resp| {
                let body = String::from_utf8(resp.body).ok()?;
                let doc = Json::parse(&body).ok()?;
                MetricsSnapshot::from_json(&doc.get("data")?.to_string())
            });
        let Some(snapshot) = snapshot else {
            return Response::error(503, &format!("shard {i} metrics unavailable"));
        };
        match &mut aggregate {
            Some(total) => total.merge(&snapshot),
            None => aggregate = Some(snapshot),
        }
    }
    let Some(snapshot) = aggregate else {
        return Response::error(503, "no shards configured");
    };
    if req.query_param("format") == Some("prom") {
        let mut body = snapshot.to_prometheus(state.uptime_seconds(), VERSION);
        body.push_str(&gables_model::prof::prometheus_text());
        let mut resp = Response::text(200, body);
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8".to_string();
        resp
    } else if wants_text(req) {
        Response::text(200, snapshot.to_text())
    } else {
        Response::json(200, envelope(&snapshot.to_json()))
    }
}

/// Parent-side `GET /v1/healthz`: healthy only if every shard is. The
/// default body stays the byte-exact `ok\n` probes expect;
/// `?format=json` details per-shard status.
fn aggregated_healthz(req: &Request, addrs: &Arc<Vec<String>>, state: &ServeState) -> Response {
    let statuses: Vec<(String, bool)> = addrs
        .iter()
        .map(|addr| {
            let shard_req = Request {
                method: "GET".into(),
                path: "/v1/healthz".into(),
                query: None,
                headers: Vec::new(),
                body: Vec::new(),
            };
            let healthy = forward(addr, &shard_req, "/v1/healthz")
                .map(|resp| resp.status == 200)
                .unwrap_or(false);
            (addr.clone(), healthy)
        })
        .collect();
    let all_healthy = statuses.iter().all(|(_, healthy)| *healthy);
    if req.query_param("format") != Some("json") {
        return if all_healthy {
            Response::text(200, "ok\n")
        } else {
            Response::error(503, "one or more shards are unhealthy")
        };
    }
    let doc = Json::Object(vec![
        (
            "status".into(),
            Json::str(if all_healthy { "ok" } else { "degraded" }),
        ),
        ("version".into(), Json::str(VERSION)),
        ("uptime_seconds".into(), Json::num(state.uptime_seconds())),
        ("replicas".into(), Json::num(addrs.len() as f64)),
        (
            "shards".into(),
            Json::Array(
                statuses
                    .iter()
                    .map(|(addr, healthy)| {
                        Json::Object(vec![
                            ("addr".into(), Json::str(addr.clone())),
                            (
                                "status".into(),
                                Json::str(if *healthy { "ok" } else { "unreachable" }),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let body = envelope(&doc.to_string());
    if all_healthy {
        Response::json(200, body)
    } else {
        let mut resp = Response::json(503, body);
        resp.content_type = "application/json".to_string();
        resp
    }
}

/// Parent-side `GET /v1/slo`: fetch every shard's snapshot, merge the
/// quantile sketches (exact bucket-wise addition — the fleet sketch is
/// bit-identical to one sketch fed the union stream), and evaluate the
/// parent's SLO definitions against the merged windows.
fn aggregated_slo(req: &Request, addrs: &Arc<Vec<String>>, state: &ServeState) -> Response {
    let mut aggregate: Option<SloSnapshot> = None;
    for (i, addr) in addrs.iter().enumerate() {
        let shard_req = Request {
            method: "GET".into(),
            path: "/v1/slo".into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        };
        let snapshot = forward(addr, &shard_req, "/v1/slo")
            .ok()
            .filter(|resp| resp.status == 200)
            .and_then(|resp| {
                let body = String::from_utf8(resp.body).ok()?;
                let doc = Json::parse(&body).ok()?;
                SloSnapshot::from_json(doc.get("data")?)
            });
        let Some(snapshot) = snapshot else {
            return Response::error(503, &format!("shard {i} SLO snapshot unavailable"));
        };
        match &mut aggregate {
            Some(total) => {
                if !total.merge(&snapshot) {
                    return Response::error(503, &format!("shard {i} SLO snapshot incompatible"));
                }
            }
            None => aggregate = Some(snapshot),
        }
    }
    let Some(snapshot) = aggregate else {
        return Response::error(503, "no shards configured");
    };
    slo_render(req, &snapshot, &state.slos, addrs.len())
}

/// Parses `?shard=` against the shard count: `Ok(None)` when absent,
/// a 422 `invalid_parameter` when not an index in `0..shards`.
fn shard_index_param(req: &Request, shards: usize) -> Result<Option<usize>, Box<Response>> {
    let Some(raw) = req.query_param("shard") else {
        return Ok(None);
    };
    match raw.parse::<usize>() {
        Ok(i) if i < shards => Ok(Some(i)),
        _ => Err(Box::new(Response::error_with_kind(
            422,
            Some("invalid_parameter"),
            &format!("query parameter shard={raw:?} must be an integer in 0..{shards}"),
        ))),
    }
}

/// Parent-side `GET /v1/debug/requests`: with `?shard=i` the request is
/// forwarded verbatim to that shard; without it, every shard's flight
/// ring is fetched and interleaved into one fleet timeline ordered by
/// wall-clock completion (`ts_unix_us`, newest first), each record
/// tagged with its shard index. `?id=` scans the shards and relays the
/// first one retaining the record.
fn fleet_debug_requests(req: &Request, addrs: &Arc<Vec<String>>) -> Response {
    let shard = match shard_index_param(req, addrs.len()) {
        Ok(shard) => shard,
        Err(resp) => return *resp,
    };
    if let Some(i) = shard {
        return forward(&addrs[i], req, "/v1/debug/requests")
            .unwrap_or_else(|e| Response::error(503, &format!("shard {i} unavailable: {e}")));
    }
    if let Some(id) = req.query_param("id") {
        for addr in addrs.iter() {
            if let Ok(resp) = forward(addr, req, "/v1/debug/requests") {
                if resp.status == 200 {
                    return resp;
                }
            }
        }
        return Response::error(404, &format!("no shard retains a request with id {id:?}"));
    }
    let n = match query_num(req, "n", 32.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if n.fract() != 0.0 || n < 1.0 || n > MAX_DEBUG_REQUESTS as f64 {
        return Response::error_with_kind(
            400,
            Some("invalid_parameter"),
            &format!("query parameter n={n} must be an integer in 1..={MAX_DEBUG_REQUESTS}"),
        );
    }
    let mut capacity = 0u64;
    let mut recorded_total = 0u64;
    let mut merged: Vec<Json> = Vec::new();
    for (i, addr) in addrs.iter().enumerate() {
        let shard_req = Request {
            method: "GET".into(),
            path: "/v1/debug/requests".into(),
            query: Some(format!("n={}", n as usize)),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let data = forward(addr, &shard_req, "/v1/debug/requests")
            .ok()
            .filter(|resp| resp.status == 200)
            .and_then(|resp| {
                let body = String::from_utf8(resp.body).ok()?;
                Json::parse(&body).ok()?.get("data").cloned()
            });
        let Some(data) = data else {
            return Response::error(503, &format!("shard {i} flight records unavailable"));
        };
        let count = |key: &str| data.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        capacity += count("capacity");
        recorded_total += count("recorded_total");
        if let Some(requests) = data.get("requests").and_then(Json::as_array) {
            for record in requests {
                if let Json::Object(mut fields) = record.clone() {
                    fields.push(("shard".into(), Json::num(i as f64)));
                    merged.push(Json::Object(fields));
                }
            }
        }
    }
    // One fleet timeline: newest completion first across every shard.
    merged.sort_by(|a, b| {
        let ts = |r: &Json| r.get("ts_unix_us").and_then(Json::as_f64).unwrap_or(0.0);
        ts(b)
            .partial_cmp(&ts(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    merged.truncate(n as usize);
    let doc = Json::Object(vec![
        ("capacity".into(), Json::num(capacity as f64)),
        ("recorded_total".into(), Json::num(recorded_total as f64)),
        ("shards".into(), Json::num(addrs.len() as f64)),
        ("count".into(), Json::num(merged.len() as f64)),
        ("requests".into(), Json::Array(merged)),
    ]);
    Response::json(200, envelope(&doc.to_string()))
}

/// Parent-side `GET /v1/debug/profile`: `?shard=i` forwards the request
/// to that shard's profiler (422 when the index is out of range);
/// without it the parent profiles its own routing process, as before.
fn fleet_debug_profile(req: &Request, addrs: &Arc<Vec<String>>) -> Response {
    match shard_index_param(req, addrs.len()) {
        Err(resp) => *resp,
        Ok(Some(i)) => forward(&addrs[i], req, "/v1/debug/profile")
            .unwrap_or_else(|e| Response::error(503, &format!("shard {i} unavailable: {e}"))),
        Ok(None) => debug_profile_response(req),
    }
}

/// Response headers never relayed from a shard: connection framing is
/// the parent's business, and the parent stamps its own request ID.
const HOP_HEADERS: &[&str] = &[
    "connection",
    "content-length",
    "content-type",
    "x-request-id",
];

/// Forwards a request to one shard over a fresh connection (clean
/// `Connection: close` framing; shard keep-alive serves external
/// clients, not this internal hop) and parses the response. The
/// client's `X-Request-Id` is propagated so parent and shard flight
/// records correlate. Also the transport behind `gables top`'s polling.
pub(crate) fn forward(addr: &str, req: &Request, path: &str) -> std::io::Result<Response> {
    use std::io::{Read as _, Write as _};
    let _span = obs::span("shard.forward");
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
    let target = match &req.query {
        Some(q) => format!("{path}?{q}"),
        None => path.to_string(),
    };
    let mut head = format!(
        "{} {} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n",
        req.method,
        target,
        req.body.len(),
    );
    if let Some(id) = req.header("x-request-id") {
        head.push_str(&format!("X-Request-Id: {id}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_shard_response(&raw)
}

/// Parses a shard's full `Connection: close` response into a
/// [`Response`], relaying status, content type, body, and every header
/// except the hop-by-hop set in [`HOP_HEADERS`].
fn parse_shard_response(raw: &[u8]) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("shard response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| bad("shard response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty shard response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparsable shard status line"))?;
    let mut resp = Response::text(status, "");
    resp.body = raw[head_end + 4..].to_vec();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        if name.eq_ignore_ascii_case("content-type") {
            resp.content_type = value.to_string();
        } else if !HOP_HEADERS.iter().any(|h| name.eq_ignore_ascii_case(h)) {
            resp = resp.with_header(name, value);
        }
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_command;
    use crate::spec::FIGURE_6B_SPEC;

    fn post(path: &str, query: Option<&str>, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: query.map(String::from),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str, query: Option<&str>) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.map(String::from),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn router() -> Router {
        build_router(
            Arc::new(ServerMetrics::new()),
            Arc::new(ShardedCache::new(4, 32)),
        )
    }

    fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
        resp.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Parses an envelope body and returns (ok, data) with the error
    /// field checked for consistency.
    fn open_envelope(resp: &Response) -> (bool, Json) {
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let ok = doc.get("ok").and_then(Json::as_bool).unwrap();
        if ok {
            assert!(matches!(doc.get("error"), Some(Json::Null)));
            (ok, doc.get("data").unwrap().clone())
        } else {
            assert!(matches!(doc.get("data"), Some(Json::Null)));
            (ok, doc.get("error").unwrap().clone())
        }
    }

    #[test]
    fn parse_serve_args_defaults_and_overrides() {
        let opts = parse_serve_args(&[]).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7878");
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.replicas, 1);
        assert!(!opts.announce);
        let opts =
            parse_serve_args(&["0.0.0.0:9000".into(), "--workers".into(), "2".into()]).unwrap();
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.workers, 2);
        let opts =
            parse_serve_args(&["--replicas".into(), "3".into(), "--announce".into()]).unwrap();
        assert_eq!(opts.replicas, 3);
        assert!(opts.announce);
        assert!(parse_serve_args(&["--workers".into()]).is_err());
        assert!(parse_serve_args(&["--workers".into(), "0".into()]).is_err());
        assert!(parse_serve_args(&["--replicas".into(), "0".into()]).is_err());
        assert!(parse_serve_args(&["--replicas".into(), "two".into()]).is_err());
        assert!(parse_serve_args(&["--frob".into()]).is_err());
        assert!(parse_serve_args(&["a:1".into(), "b:2".into()]).is_err());
    }

    #[test]
    fn parse_serve_args_accepts_repeatable_slo_definitions() {
        let opts = parse_serve_args(&[
            "--slo".into(),
            "route=/v1/eval p99<2ms err<0.1%".into(),
            "--slo".into(),
            "route=/v1/sweep p50<500us".into(),
        ])
        .unwrap();
        assert_eq!(opts.slos.len(), 2);
        assert_eq!(opts.slos[0].route, "/v1/eval");
        assert_eq!(opts.slos[0].objectives.len(), 2);
        assert_eq!(opts.slos[1].route, "/v1/sweep");
        // Canonical text round-trips, so shards see the same definition.
        assert_eq!(slo_arg(&opts.slos[0]), "route=/v1/eval p99<2ms err<0.1%");
        assert_eq!(
            SloSpec::parse(&slo_arg(&opts.slos[0])).unwrap(),
            opts.slos[0]
        );
        assert!(parse_serve_args(&["--slo".into()]).is_err());
        let err = parse_serve_args(&["--slo".into(), "p99<2ms".into()]).unwrap_err();
        assert!(err.message.contains("route="), "{err}");
        assert!(parse_serve_args(&["--slo".into(), "route=/v1/eval p75<2ms".into()]).is_err());
    }

    #[test]
    fn slo_endpoint_reports_quantiles_and_burn_rates() {
        let state = state().with_slos(vec![
            SloSpec::parse("route=/v1/eval p99<1us").unwrap(),
            SloSpec::parse("route=/v1/eval p99<60s err<50%").unwrap(),
        ]);
        for i in 0..50u64 {
            let status = if i % 10 == 0 { 500 } else { 200 };
            state.metrics.record_handled(
                "/v1/eval",
                status,
                std::time::Duration::from_micros(100 + i),
            );
        }
        let router = build_router_with(&state);
        let resp = router.dispatch(&get("/v1/slo", None));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("shards").and_then(Json::as_f64), Some(1.0));
        let route = data.get("routes").unwrap().get("/v1/eval").unwrap();
        assert_eq!(route.get("total").and_then(Json::as_f64), Some(50.0));
        assert_eq!(route.get("errors").and_then(Json::as_f64), Some(5.0));
        let cumulative = data
            .get("quantiles")
            .unwrap()
            .get("/v1/eval")
            .unwrap()
            .get("cumulative")
            .unwrap();
        let p50 = cumulative.get("p50_us").and_then(Json::as_f64).unwrap();
        assert!((100.0..=150.0).contains(&p50), "{p50}");
        // Every request breaks p99<1us (burn ≫ 1); the generous SLO
        // holds (burn ≤ 1 means within budget).
        let slos = data.get("slos").unwrap().as_array().unwrap();
        assert_eq!(slos.len(), 3, "one entry per objective");
        let burn = |idx: usize| {
            slos[idx].get("windows").unwrap().as_array().unwrap()[0]
                .get("burn_rate")
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert!(burn(0) > 1.0, "tight latency SLO must burn: {}", burn(0));
        assert!(burn(1) <= 1.0, "loose latency SLO holds: {}", burn(1));
        // err<50% with a 10% error rate burns at 0.2.
        assert!((burn(2) - 0.2).abs() < 1e-9, "{}", burn(2));

        let resp = router.dispatch(&get("/v1/slo", Some("format=prom")));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("gables_slo_shards 1\n"), "{body}");
        assert!(
            body.contains("gables_route_latency_quantile_seconds{route=\"/v1/eval\""),
            "{body}"
        );
        assert!(
            body.contains("gables_slo_burn_rate{route=\"/v1/eval\""),
            "{body}"
        );
        assert!(body.contains("gables_slo_ok{route=\"/v1/eval\""), "{body}");
    }

    #[test]
    fn fleet_debug_routes_reject_out_of_range_shard_indices() {
        // The 422 contract needs no live shards: validation happens
        // before any forwarding.
        let addrs: Arc<Vec<String>> = Arc::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]);
        for (target, handler) in [
            (
                "/v1/debug/profile",
                fleet_debug_profile as fn(&Request, &Arc<Vec<String>>) -> Response,
            ),
            ("/v1/debug/requests", fleet_debug_requests),
        ] {
            for bad in ["shard=2", "shard=-1", "shard=one"] {
                let resp = handler(&get(target, Some(bad)), &addrs);
                assert_eq!(resp.status, 422, "{target}?{bad}");
                let (ok, err) = open_envelope(&resp);
                assert!(!ok);
                assert_eq!(
                    err.get("kind").and_then(Json::as_str),
                    Some("invalid_parameter"),
                    "{target}?{bad}"
                );
            }
        }
    }

    #[test]
    fn hash_ring_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(4);
        // Deterministic: the same key always lands on the same shard.
        for key in ["alpha", "beta", "gamma"] {
            assert_eq!(ring.shard_for(key), HashRing::new(4).shard_for(key));
        }
        // Coverage: enough keys reach every shard.
        let mut hit = [false; 4];
        for i in 0..256 {
            hit[ring.shard_for(&format!("key-{i}"))] = true;
        }
        assert!(hit.iter().all(|&h| h), "{hit:?}");
        // Stability: growing the ring by one shard moves only part of
        // the key space.
        let bigger = HashRing::new(5);
        let moved = (0..256)
            .filter(|i| {
                let key = format!("key-{i}");
                ring.shard_for(&key) != bigger.shard_for(&key)
            })
            .count();
        assert!(
            moved < 160,
            "consistent hashing should move ~1/5, moved {moved}/256"
        );
    }

    #[test]
    fn eval_text_format_matches_cli_output_exactly() {
        let resp = router().dispatch(&post("/v1/eval", Some("format=text"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            eval_command(FIGURE_6B_SPEC).unwrap()
        );
    }

    #[test]
    fn eval_json_has_structured_fields_in_the_envelope() {
        let resp = router().dispatch(&post("/v1/eval", None, FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        let gops = data.get("attainable_gops").and_then(Json::as_f64).unwrap();
        assert!((gops - 1.3278).abs() < 1e-3, "{gops}");
        assert_eq!(
            data.get("bottleneck").and_then(Json::as_str),
            Some("memory interface")
        );
        assert!(data
            .get("output")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Pattainable"));
    }

    #[test]
    fn eval_accepts_a_json_wrapped_spec() {
        let body = Json::Object(vec![("spec".into(), Json::str(FIGURE_6B_SPEC))]).to_string();
        let resp = router().dispatch(&post("/v1/eval", None, &body));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn eval_rejects_empty_and_invalid_bodies_with_error_envelopes() {
        for body in ["", "{\"nope\": 1}", "[soc]\nbogus = 1\n"] {
            let resp = router().dispatch(&post("/v1/eval", None, body));
            assert_eq!(resp.status, 400, "{body:?}");
            let (ok, error) = open_envelope(&resp);
            assert!(!ok, "{body:?}");
            assert_eq!(
                error.get("code").and_then(Json::as_str),
                Some("bad_request"),
                "{body:?}"
            );
            assert!(error.get("message").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn carm_serves_the_ladder_in_the_envelope() {
        let spec = crate::carm::tests::carm_spec();
        let resp = router().dispatch(&post("/v1/carm", None, &spec));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        let ladder = data.get("ladder").unwrap();
        let Json::Array(rungs) = ladder else {
            panic!("ladder must be an array: {ladder:?}");
        };
        assert_eq!(rungs.len(), 4, "three cache levels plus DRAM");
        for rung in rungs {
            assert!(rung.get("gbps").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(rung
                .get("knee_ops_per_byte")
                .and_then(Json::as_f64)
                .is_some());
        }
        let Some(Json::Array(sweep)) = data.get("sweep") else {
            panic!("sweep must be an array");
        };
        assert!(!sweep.is_empty());
        assert!(sweep
            .iter()
            .any(|p| p.get("binding").and_then(Json::as_str) == Some("compute")));

        // ?format=text matches the CLI byte for byte.
        let resp = router().dispatch(&post("/v1/carm", Some("format=text"), &spec));
        assert_eq!(resp.status, 200);
        let report = crate::carm::carm_report(&spec, gables_model::Parallelism::Auto).unwrap();
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            crate::carm::render_text(&report)
        );

        // Malformed hierarchies carry the closed code.
        let bad = format!("{FIGURE_6B_SPEC}\n[cache.l1]\ncapacity_kib = 0\nlatency_ns = 1\n");
        let resp = router().dispatch(&post("/v1/carm", None, &bad));
        assert_eq!(resp.status, 400);
        let (ok, error) = open_envelope(&resp);
        assert!(!ok);
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("invalid_cache_config"),
            "{error:?}"
        );
    }

    #[test]
    fn sweep_defaults_to_an_intensity_sweep() {
        let resp = router().dispatch(&post("/v1/sweep", None, FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("param").and_then(Json::as_str), Some("intensity"));
        let out = data.get("output").and_then(Json::as_str).unwrap();
        assert!(out.contains("I(ops/B)"), "{out}");
        assert_eq!(out.lines().count(), 18, "header + 17 rows");
    }

    #[test]
    fn sweep_accepts_explicit_params_and_rejects_bad_ones() {
        let resp = router().dispatch(&post(
            "/v1/sweep",
            Some("param=bpeak&from=5&to=40&steps=4"),
            FIGURE_6B_SPEC,
        ));
        assert_eq!(resp.status, 200);
        let resp = router().dispatch(&post("/v1/sweep", Some("from=banana"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 400);
        let resp = router().dispatch(&post("/v1/sweep", Some("param=nope"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn sweep_rejects_non_finite_bounds_and_unbounded_steps() {
        // `steps=inf` used to cast through `as usize` to usize::MAX and
        // turn one request into an effectively unbounded evaluation loop.
        for query in [
            "steps=inf",
            "steps=nan",
            "steps=1e400",
            "steps=0",
            "steps=-3",
            "steps=2.5",
            "steps=200000",
            "from=nan",
            "to=inf",
            "from=-1e400",
        ] {
            let resp = router().dispatch(&post("/v1/sweep", Some(query), FIGURE_6B_SPEC));
            assert_eq!(resp.status, 400, "{query}");
            let (ok, error) = open_envelope(&resp);
            assert!(!ok, "{query}");
            assert_eq!(
                error.get("kind").and_then(Json::as_str),
                Some("invalid_parameter"),
                "{query}"
            );
        }
        // The cap itself is inclusive.
        let resp = router().dispatch(&post("/v1/sweep", Some("steps=5"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn error_envelopes_carry_the_closed_error_kind() {
        // Model-rule violation surfaces the `ErrorKind` code.
        let unbalanced =
            FIGURE_6B_SPEC.replace("fractions   = 0.25, 0.75", "fractions   = 0.25, 0.5");
        let resp = router().dispatch(&post("/v1/eval", None, &unbalanced));
        assert_eq!(resp.status, 400);
        let (ok, error) = open_envelope(&resp);
        assert!(!ok);
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("work_fraction_sum")
        );
        // Non-finite literal in the spec is an invalid_parameter.
        let poisoned = FIGURE_6B_SPEC.replace("ppeak_gops = 40", "ppeak_gops = nan");
        let resp = router().dispatch(&post("/v1/eval", None, &poisoned));
        assert_eq!(resp.status, 400);
        let (_, error) = open_envelope(&resp);
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("invalid_parameter")
        );
        // Transport-level parse failure gets the parser's own kind.
        let resp = router().dispatch(&post("/v1/eval", None, "not a spec"));
        assert_eq!(resp.status, 400);
        let (_, error) = open_envelope(&resp);
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some(crate::spec::SPEC_PARSE_KIND)
        );
    }

    #[test]
    fn whatif_needs_json_body_with_edits() {
        let body = Json::Object(vec![
            ("spec".into(), Json::str(FIGURE_6B_SPEC)),
            ("edits".into(), Json::str("set_bpeak 30; set_intensity 1 8")),
        ])
        .to_string();
        let resp = router().dispatch(&post("/v1/whatif", None, &body));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert!(data
            .get("output")
            .and_then(Json::as_str)
            .unwrap()
            .contains("baseline"));
        // Raw spec text (no edits field) is a clear 400.
        let resp = router().dispatch(&post("/v1/whatif", None, FIGURE_6B_SPEC));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn simulate_reports_per_job_attribution() {
        let resp = router().dispatch(&post("/v1/simulate", None, FIGURE_6B_SPEC));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert!(data.get("makespan_seconds").and_then(Json::as_f64).unwrap() > 0.0);
        let jobs = data.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        let cpu = &jobs[0];
        assert_eq!(cpu.get("name").and_then(Json::as_str), Some("CPU"));
        let breakdown = cpu
            .get("bottleneck_breakdown")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(breakdown.len(), 6);
        let total: f64 = breakdown.iter().map(|(_, v)| v.as_f64().unwrap()).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fractions sum to 1, got {total}"
        );
        assert!(cpu
            .get("dominant_bottleneck")
            .and_then(Json::as_str)
            .is_some());
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let metrics = Arc::new(ServerMetrics::new());
        let router = build_router(Arc::clone(&metrics), Arc::new(ShardedCache::new(4, 32)));
        let first = router.dispatch(&post("/v1/eval", None, FIGURE_6B_SPEC));
        // Cosmetically different spelling of the same spec still hits.
        let respelled = format!("# a comment\n{}", FIGURE_6B_SPEC.replace(" = ", "="));
        let second = router.dispatch(&post("/v1/eval", None, &respelled));
        assert_eq!(first.body, second.body);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.cache_misses, 1);
        assert_eq!(snapshot.cache_hits, 1);
    }

    #[test]
    fn sunset_aliases_answer_410_gone_with_successor_links() {
        let router = router();
        for (method, alias, v1) in SUNSET_ALIASES {
            let req = if *method == "POST" {
                post(alias, None, FIGURE_6B_SPEC)
            } else {
                get(alias, None)
            };
            let resp = router.dispatch(&req);
            assert_eq!(resp.status, 410, "{alias}");
            assert_eq!(header(&resp, "Deprecation"), None, "{alias}");
            let link = header(&resp, "Link").unwrap_or_default();
            assert!(
                link.contains(v1) && link.contains("successor-version"),
                "{alias}: {link:?}"
            );
            let (ok, error) = open_envelope(&resp);
            assert!(!ok, "{alias}");
            assert_eq!(
                error.get("code").and_then(Json::as_str),
                Some("endpoint_gone"),
                "{alias}"
            );
            assert!(
                error
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap()
                    .contains(v1),
                "{alias}"
            );
        }
    }

    #[test]
    fn v1_routes_carry_no_deprecation_headers() {
        let router = router();
        for req in [
            post("/v1/eval", None, FIGURE_6B_SPEC),
            get("/v1/metrics", None),
            get("/v1/healthz", None),
        ] {
            let resp = router.dispatch(&req);
            assert_eq!(resp.status, 200, "{}", req.path);
            assert_eq!(header(&resp, "Deprecation"), None, "{}", req.path);
        }
    }

    #[test]
    fn healthz_answers_ok_at_the_v1_path_only() {
        let resp = router().dispatch(&get("/v1/healthz", None));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
        let resp = router().dispatch(&get("/healthz", None));
        assert_eq!(resp.status, 410);
    }

    #[test]
    fn discovery_lists_routes_sunsets_and_the_closed_error_vocabulary() {
        let resp = router().dispatch(&get("/v1", None));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("version").and_then(Json::as_str), Some(VERSION));
        let routes = data.get("routes").unwrap().as_array().unwrap();
        let listed: Vec<(&str, &str)> = routes
            .iter()
            .map(|r| {
                (
                    r.get("method").and_then(Json::as_str).unwrap(),
                    r.get("path").and_then(Json::as_str).unwrap(),
                )
            })
            .collect();
        // The document covers exactly the live route table (aliases are
        // listed under "sunset", not "routes").
        let live_router = router();
        let table = live_router.route_table();
        let live: Vec<(String, String)> = table
            .iter()
            .filter(|(_, p)| p.starts_with("/v1"))
            .map(|(m, p)| (m.to_string(), p.to_string()))
            .collect();
        assert_eq!(listed.len(), live.len());
        for (method, path) in &live {
            assert!(
                listed.contains(&(method.as_str(), path.as_str())),
                "{method} {path} missing from discovery"
            );
        }
        // Sweep documents its query params.
        let sweep = routes
            .iter()
            .find(|r| r.get("path").and_then(Json::as_str) == Some("/v1/sweep"))
            .unwrap();
        let params: Vec<&str> = sweep
            .get("params")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert!(params.contains(&"steps"), "{params:?}");
        // The error vocabulary is sourced from the closed sets.
        let codes = data.get("error_codes").unwrap();
        let transport: Vec<&str> = codes
            .get("transport")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|c| c.get("code").and_then(Json::as_str))
            .collect();
        for (_, code) in Response::ERROR_CODES {
            assert!(transport.contains(code), "{code} missing");
        }
        let kinds: Vec<&str> = codes
            .get("kinds")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        for kind in gables_model::ErrorKind::ALL {
            assert!(kinds.contains(&kind.code()), "{} missing", kind.code());
        }
        assert!(kinds.contains(&crate::spec::SPEC_PARSE_KIND));
        assert!(kinds.contains(&"profile_in_progress"));
        // Every sunset alias names its successor.
        let sunset = data.get("sunset").unwrap().as_array().unwrap();
        assert_eq!(sunset.len(), SUNSET_ALIASES.len());
        for tomb in sunset {
            assert_eq!(tomb.get("status").and_then(Json::as_f64), Some(410.0));
            assert!(tomb.get("successor").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn batch_items_are_bit_identical_to_single_eval_responses() {
        let router = router();
        let bad_spec = "not a spec";
        let specs = Json::Object(vec![(
            "specs".into(),
            Json::Array(vec![
                Json::str(FIGURE_6B_SPEC),
                Json::str(bad_spec),
                Json::str(FIGURE_6B_SPEC),
            ]),
        )])
        .to_string();
        let resp = router.dispatch(&post("/v1/batch", None, &specs));
        assert_eq!(resp.status, 200, "one bad spec must not fail the batch");
        let body = String::from_utf8(resp.body.clone()).unwrap();
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("count").and_then(Json::as_f64), Some(3.0));

        // Bit-identity: each item is byte-for-byte a single /v1/eval
        // response. The good spec was evaluated by the batch first, so
        // the single request below is a cache hit — same bytes either
        // way, which is the whole point of the canonical cache key.
        let single_good = router.dispatch(&post("/v1/eval", None, FIGURE_6B_SPEC));
        let single_bad = router.dispatch(&post("/v1/eval", None, bad_spec));
        let good = String::from_utf8(single_good.body).unwrap();
        let bad = String::from_utf8(single_bad.body).unwrap();
        let expected = format!(
            "{{\"ok\":true,\"data\":{{\"count\":3,\"items\":[{good},{bad},{good}]}},\"error\":null}}"
        );
        assert_eq!(body, expected);

        // The per-item error carries its own closed code.
        let items = data.get("items").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(items[1].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            items[1]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some(crate::spec::SPEC_PARSE_KIND)
        );
    }

    #[test]
    fn batch_accepts_a_bare_array_and_rejects_malformed_bodies() {
        let router = router();
        let bare = Json::Array(vec![Json::str(FIGURE_6B_SPEC)]).to_string();
        let resp = router.dispatch(&post("/v1/batch", None, &bare));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("count").and_then(Json::as_f64), Some(1.0));

        for body in [
            "",
            "not json",
            "{\"nope\": 1}",
            "{\"specs\": \"one\"}",
            "[]",
            "{\"specs\": []}",
            "[42]",
        ] {
            let resp = router.dispatch(&post("/v1/batch", None, body));
            assert_eq!(resp.status, 400, "{body:?}");
            let (ok, error) = open_envelope(&resp);
            assert!(!ok, "{body:?}");
            assert_eq!(
                error.get("kind").and_then(Json::as_str),
                Some("invalid_parameter"),
                "{body:?}"
            );
        }
        let over = Json::Array(vec![Json::str("x"); MAX_BATCH_ITEMS + 1]).to_string();
        let resp = router.dispatch(&post("/v1/batch", None, &over));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn batch_shares_the_cache_with_single_eval_requests() {
        let metrics = Arc::new(ServerMetrics::new());
        let router = build_router(Arc::clone(&metrics), Arc::new(ShardedCache::new(4, 32)));
        let _ = router.dispatch(&post("/v1/eval", None, FIGURE_6B_SPEC));
        let batch = Json::Array(vec![Json::str(FIGURE_6B_SPEC)]).to_string();
        let _ = router.dispatch(&post("/v1/batch", None, &batch));
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.cache_misses, 1);
        assert_eq!(
            snapshot.cache_hits, 1,
            "the batch item must hit the single-request cache entry"
        );
    }

    fn state() -> ServeState {
        ServeState::new(
            Arc::new(ServerMetrics::new()),
            Arc::new(ShardedCache::new(4, 32)),
            Arc::new(FlightRecorder::new(8)),
            4,
        )
    }

    #[test]
    fn healthz_json_reports_uptime_version_and_saturation() {
        let state = state();
        state.metrics.enter_in_flight();
        let router = build_router_with(&state);
        let resp = router.dispatch(&get("/v1/healthz", Some("format=json")));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(data.get("version").and_then(Json::as_str), Some(VERSION));
        assert!(data.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(data.get("in_flight").and_then(Json::as_f64), Some(1.0));
        assert_eq!(data.get("workers").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            data.get("worker_saturation").and_then(Json::as_f64),
            Some(0.25)
        );
        // The default stays byte-identical even with other formats around.
        let resp = router.dispatch(&get("/v1/healthz", None));
        assert_eq!(resp.body, b"ok\n");
        let resp = router.dispatch(&get("/v1/healthz", Some("format=yaml")));
        assert_eq!(resp.body, b"ok\n", "unknown formats fall back to plain");
    }

    #[test]
    fn metrics_prom_format_exposes_the_exposition() {
        let state = state();
        state
            .metrics
            .record_handled("/v1/eval", 200, std::time::Duration::from_micros(50));
        let router = build_router_with(&state);
        let resp = router.dispatch(&get("/v1/metrics", Some("format=prom")));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("gables_requests_handled_total 1\n"), "{body}");
        assert!(body.contains(&format!("gables_build_info{{version=\"{VERSION}\"}} 1\n")));
        assert!(body.contains("gables_uptime_seconds "));
        assert!(body.contains("gables_request_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        // Process-global profiler/allocator series are appended.
        assert!(body.contains("gables_profile_samples_total "), "{body}");
        assert!(body.contains("gables_allocs_total "));
        assert!(body.contains("gables_alloc_bytes_total "));
        assert!(body.contains("# HELP gables_phase_self_seconds_total "));
    }

    #[test]
    fn debug_profile_validates_rejects_concurrency_and_profiles() {
        use gables_model::prof;
        let router = router();
        // 422 for unbounded, non-numeric, or non-finite seconds and for
        // unknown formats — the structured `unprocessable` contract.
        for bad in [
            "seconds=0",
            "seconds=-1",
            "seconds=16",
            "seconds=inf",
            "seconds=nan",
            "seconds=never",
            "format=xml",
        ] {
            let resp = router.dispatch(&get("/v1/debug/profile", Some(bad)));
            assert_eq!(resp.status, 422, "{bad}");
            let (ok, err) = open_envelope(&resp);
            assert!(!ok);
            assert_eq!(
                err.get("code").and_then(Json::as_str),
                Some("unprocessable")
            );
            assert_eq!(
                err.get("kind").and_then(Json::as_str),
                Some("invalid_parameter"),
                "{bad}"
            );
        }
        // 409 while another session holds the process-global profiler.
        {
            let _busy = prof::start(prof::SampleConfig::default()).expect("session starts");
            let resp = router.dispatch(&get("/v1/debug/profile", Some("seconds=0.05")));
            assert_eq!(resp.status, 409);
            let (ok, err) = open_envelope(&resp);
            assert!(!ok);
            assert_eq!(err.get("code").and_then(Json::as_str), Some("conflict"));
            assert_eq!(
                err.get("kind").and_then(Json::as_str),
                Some("profile_in_progress")
            );
        }
        // Happy path: folded is plain text with `path count` lines
        // (possibly empty when dispatched without a serving thread);
        // json is an enveloped profile document.
        let resp = router.dispatch(&get("/v1/debug/profile", Some("seconds=0.05")));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; charset=utf-8");
        let body = String::from_utf8(resp.body).unwrap();
        for line in body.lines() {
            let (path, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!path.is_empty());
            count.parse::<u64>().expect("folded count");
        }
        let resp = router.dispatch(&get("/v1/debug/profile", Some("seconds=0.05&format=json")));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert!(data.get("samples_total").and_then(Json::as_f64).is_some());
        assert!(data.get("alloc_bytes").and_then(Json::as_f64).is_some());
        assert!(data.get("stacks").is_some());
    }

    #[test]
    fn debug_requests_lists_and_fetches_flight_records() {
        use gables_serve::FlightRecord;
        let state = state();
        for i in 0..3 {
            state.flight.record(FlightRecord {
                seq: 0,
                id: format!("req-{i}"),
                method: "POST".into(),
                route: "/v1/eval".into(),
                status: 200,
                ts_unix_us: 1_700_000_000_000_000 + i,
                latency_us: 100 + i,
                cache_hit: Some(i == 2),
                allocs: 12,
                alloc_bytes: 4096,
                cpu_busy_us: 120.0,
                spans: vec![gables_model::obs::SpanRecord {
                    name: "server.request".into(),
                    trace_id: 7,
                    span_id: 9,
                    parent_id: 0,
                    start_us: 0.0,
                    dur_us: 120.0,
                }],
                spans_dropped: 0,
            });
        }
        let router = build_router_with(&state);

        let resp = router.dispatch(&get("/v1/debug/requests", Some("n=2")));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("recorded_total").and_then(Json::as_f64), Some(3.0));
        assert_eq!(data.get("count").and_then(Json::as_f64), Some(2.0));
        let reqs = data.get("requests").unwrap().as_array().unwrap();
        assert_eq!(reqs[0].get("id").and_then(Json::as_str), Some("req-2"));
        assert_eq!(reqs[0].get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            reqs[0].get("span_summary").and_then(Json::as_str),
            Some("server.request")
        );
        assert!(reqs[0].get("spans").is_none(), "list view omits full spans");

        let resp = router.dispatch(&get("/v1/debug/requests", Some("id=req-1")));
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert_eq!(data.get("latency_us").and_then(Json::as_f64), Some(101.0));
        assert_eq!(data.get("spans").unwrap().as_array().unwrap().len(), 1);

        let resp = router.dispatch(&get("/v1/debug/requests", Some("id=req-1&format=trace")));
        assert_eq!(resp.status, 200);
        let trace = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(!trace
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        let resp = router.dispatch(&get("/v1/debug/requests", Some("id=req-1&format=text")));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("server.request"), "{text}");

        let resp = router.dispatch(&get("/v1/debug/requests", Some("id=ghost")));
        assert_eq!(resp.status, 404);
        for bad in ["n=0", "n=1.5", "n=nan", "n=100000"] {
            let resp = router.dispatch(&get("/v1/debug/requests", Some(bad)));
            assert_eq!(resp.status, 400, "{bad}");
        }
    }

    #[test]
    fn post_responses_carry_the_cache_outcome_header() {
        let router = router();
        let first = router.dispatch(&post("/v1/eval", None, FIGURE_6B_SPEC));
        assert_eq!(header(&first, "X-Cache"), Some("miss"));
        let second = router.dispatch(&post("/v1/eval", None, FIGURE_6B_SPEC));
        assert_eq!(header(&second, "X-Cache"), Some("hit"));
        let bad = router.dispatch(&post("/v1/eval", None, "not a spec"));
        assert_eq!(
            header(&bad, "X-Cache"),
            None,
            "parse failures have no outcome"
        );
    }

    #[test]
    fn metrics_endpoint_reports_both_formats() {
        let metrics = Arc::new(ServerMetrics::new());
        let router = build_router(Arc::clone(&metrics), Arc::new(ShardedCache::new(4, 32)));
        let resp = router.dispatch(&get("/v1/metrics", None));
        assert_eq!(resp.status, 200);
        let (ok, data) = open_envelope(&resp);
        assert!(ok);
        assert!(data.get("requests_total").is_some() || data.as_object().is_some());
        let resp = router.dispatch(&get("/v1/metrics", Some("format=text")));
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("gables-serve metrics"));
    }
}
