//! The `gables serve` subcommand: Gables-specific endpoints on top of
//! the generic `gables-serve` infrastructure.
//!
//! Routes (one request per connection, JSON by default, `?format=text`
//! for the plain CLI output):
//!
//! * `POST /eval` — spec text in the body → attainment + bottleneck.
//!   With `?format=text` the body is byte-identical to `gables eval`.
//! * `POST /sweep` — ERT-style sweep; `?param=f|bpeak|intensity`,
//!   `?from=`, `?to=`, `?steps=` (defaults sweep intensity 0.25..64).
//! * `POST /whatif` — JSON body `{"spec": ..., "edits": ...}` → the
//!   what-if delta report.
//! * `POST /simulate` — spec text in the body → a soc-sim run with
//!   per-job bottleneck attribution.
//! * `GET /metrics` — request counters, latency histogram, cache hit
//!   rate; `?format=text` renders an ASCII histogram.
//! * `GET /healthz` — liveness probe.
//!
//! `POST` bodies are raw spec text, or a JSON object with a `"spec"`
//! field (spec files start with `#` or `[`, so the two are unambiguous).
//! Successful responses are cached in a sharded LRU keyed by
//! `route|format|params|canonicalize(spec)`, so re-evaluating the same
//! design — the common dashboard-polling case — skips parsing and
//! evaluation entirely.

use std::sync::Arc;

use gables_model::evaluate;
use gables_model::json::Json;
use gables_serve::{Request, Response, Router, Server, ServerConfig, ServerMetrics, ShardedCache};

use crate::spec::{canonicalize, SpecError, SpecFile};
use crate::{eval_command, sweep_command, whatif_command};

/// Parsed `gables serve` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen address, default `127.0.0.1:7878`.
    pub addr: String,
    /// Worker threads, default 4.
    pub workers: usize,
}

/// Parses `[addr] [--workers N]`.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown flags or a malformed worker count.
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, SpecError> {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".to_string(),
        workers: 4,
    };
    let mut it = args.iter();
    let mut addr_seen = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let n = it.next().ok_or_else(|| SpecError {
                    line: None,
                    message: "--workers needs a count".into(),
                })?;
                opts.workers = n.parse().map_err(|_| SpecError {
                    line: None,
                    message: format!("--workers: {n:?} is not a positive integer"),
                })?;
                if opts.workers == 0 {
                    return Err(SpecError {
                        line: None,
                        message: "--workers must be at least 1".into(),
                    });
                }
            }
            other if other.starts_with('-') => {
                return Err(SpecError {
                    line: None,
                    message: format!("unknown serve flag {other:?} (only --workers <n>)"),
                })
            }
            other => {
                if addr_seen {
                    return Err(SpecError {
                        line: None,
                        message: format!("unexpected extra argument {other:?}"),
                    });
                }
                opts.addr = other.to_string();
                addr_seen = true;
            }
        }
    }
    Ok(opts)
}

/// `gables serve [addr] [--workers N]`: bind, print the listen address
/// to stderr, and serve until the process is killed.
///
/// # Errors
///
/// Returns [`SpecError`] for bad arguments or a failed bind.
pub fn serve_command(args: &[String]) -> Result<String, SpecError> {
    let opts = parse_serve_args(args)?;
    let config = ServerConfig {
        workers: opts.workers,
        ..ServerConfig::default()
    };
    let server = Server::bind(opts.addr.as_str(), config).map_err(|e| SpecError {
        line: None,
        message: format!("bind {}: {e}", opts.addr),
    })?;
    let addr = server.local_addr().map_err(|e| SpecError {
        line: None,
        message: e.to_string(),
    })?;
    let router = build_router(server.metrics(), Arc::new(ShardedCache::new(8, 128)));
    eprintln!(
        "gables-serve listening on http://{addr} ({} workers); POST /eval, /sweep, /whatif, /simulate; GET /metrics",
        opts.workers
    );
    server.run(router).map_err(|e| SpecError {
        line: None,
        message: e.to_string(),
    })?;
    Ok(String::new())
}

/// Builds the Gables route table over shared metrics and cache. Public
/// so tests can run the server on an ephemeral port.
pub fn build_router(metrics: Arc<ServerMetrics>, cache: Arc<ShardedCache>) -> Router {
    let mut router = Router::new().route("GET", "/healthz", |_| Response::text(200, "ok\n"));
    {
        let metrics = Arc::clone(&metrics);
        router = router.route("GET", "/metrics", move |req| {
            let snapshot = metrics.snapshot();
            if wants_text(req) {
                Response::text(200, snapshot.to_text())
            } else {
                Response::json(200, snapshot.to_json())
            }
        });
    }
    for (path, handler) in [
        (
            "/eval",
            eval_handler as fn(&Request, &str) -> Result<String, Response>,
        ),
        ("/sweep", sweep_handler),
        ("/whatif", whatif_handler),
        ("/simulate", simulate_handler),
    ] {
        let metrics = Arc::clone(&metrics);
        let cache = Arc::clone(&cache);
        router = router.route("POST", path, move |req| {
            let spec_text = match spec_from_body(req) {
                Ok(s) => s,
                Err(resp) => return resp,
            };
            let key = format!(
                "{path}|{}|{}|{}",
                req.query.as_deref().unwrap_or(""),
                if wants_text(req) { "text" } else { "json" },
                canonicalize(&spec_text),
            );
            if let Some(body) = cache.get(&key) {
                metrics.record_cache_hit();
                return finish(req, body);
            }
            metrics.record_cache_miss();
            match handler(req, &spec_text) {
                Ok(body) => {
                    cache.insert(key, body.clone());
                    finish(req, body)
                }
                Err(resp) => resp,
            }
        });
    }
    router
}

fn wants_text(req: &Request) -> bool {
    req.query_param("format") == Some("text")
}

fn finish(req: &Request, body: String) -> Response {
    if wants_text(req) {
        Response::text(200, body)
    } else {
        Response::json(200, body)
    }
}

/// Extracts spec text from a request body: raw spec text, or a JSON
/// object with a `"spec"` string field.
fn spec_from_body(req: &Request) -> Result<String, Response> {
    let body = req
        .body_str()
        .map_err(|e| Response::error(400, &e.to_string()))?;
    let trimmed = body.trim_start();
    if trimmed.starts_with('{') {
        let doc =
            Json::parse(body).map_err(|e| Response::error(400, &format!("request body: {e}")))?;
        Ok(doc
            .get("spec")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                Response::error(400, "JSON request body must have a string \"spec\" field")
            })?
            .to_string())
    } else if trimmed.is_empty() {
        Err(Response::error(
            400,
            "empty body: send spec text or {\"spec\": \"...\"}",
        ))
    } else {
        Ok(body.to_string())
    }
}

fn bad_request(e: &SpecError) -> Response {
    Response::error(400, &e.to_string())
}

/// `POST /eval`: with `?format=text`, exactly the `gables eval` output;
/// otherwise a JSON object with the structured summary plus that output.
fn eval_handler(req: &Request, spec_text: &str) -> Result<String, Response> {
    let output = eval_command(spec_text).map_err(|e| bad_request(&e))?;
    if wants_text(req) {
        return Ok(output);
    }
    let spec = SpecFile::parse(spec_text).map_err(|e| bad_request(&e))?;
    let soc = spec.soc().map_err(|e| bad_request(&e))?;
    let workload = spec.workload().map_err(|e| bad_request(&e))?;
    let eval = evaluate(&soc, &workload).map_err(|e| bad_request(&SpecError::from(e)))?;
    Ok(Json::Object(vec![
        (
            "attainable_gops".into(),
            Json::num(eval.attainable().to_gops()),
        ),
        (
            "bottleneck".into(),
            Json::str(eval.bottleneck().to_string()),
        ),
        ("output".into(), Json::str(output)),
    ])
    .to_string())
}

fn query_num(req: &Request, key: &str, default: f64) -> Result<f64, Response> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            Response::error(
                400,
                &format!("query parameter {key}={raw:?} is not a number"),
            )
        }),
    }
}

/// `POST /sweep`: `?param=f|bpeak|intensity` with `from`/`to`/`steps`;
/// defaults to an ERT-style intensity sweep over 0.25..64 ops/byte.
fn sweep_handler(req: &Request, spec_text: &str) -> Result<String, Response> {
    let param = req.query_param("param").unwrap_or("intensity");
    let from = query_num(req, "from", 0.25)?;
    let to = query_num(req, "to", 64.0)?;
    let steps = query_num(req, "steps", 16.0)? as usize;
    let output = sweep_command(spec_text, param, from, to, steps).map_err(|e| bad_request(&e))?;
    if wants_text(req) {
        return Ok(output);
    }
    Ok(Json::Object(vec![
        ("param".into(), Json::str(param)),
        ("output".into(), Json::str(output)),
    ])
    .to_string())
}

/// `POST /whatif`: requires a JSON body with `"spec"` and `"edits"`.
fn whatif_handler(req: &Request, spec_text: &str) -> Result<String, Response> {
    let body = req
        .body_str()
        .map_err(|e| Response::error(400, &e.to_string()))?;
    let edits = if body.trim_start().starts_with('{') {
        Json::parse(body)
            .ok()
            .and_then(|doc| doc.get("edits").and_then(Json::as_str).map(str::to_string))
    } else {
        None
    }
    .ok_or_else(|| {
        Response::error(
            400,
            "whatif needs a JSON body with \"spec\" and \"edits\" fields, e.g. {\"spec\": \"...\", \"edits\": \"set_bpeak 30\"}",
        )
    })?;
    let output = whatif_command(spec_text, &edits).map_err(|e| bad_request(&e))?;
    if wants_text(req) {
        return Ok(output);
    }
    Ok(Json::Object(vec![
        ("edits".into(), Json::str(edits)),
        ("output".into(), Json::str(output)),
    ])
    .to_string())
}

/// `POST /simulate`: run the spec's workload through the cycle-level
/// simulator and report per-job bottleneck attribution.
fn simulate_handler(_req: &Request, spec_text: &str) -> Result<String, Response> {
    use gables_soc_sim::telemetry::{BindingConstraint, NullRecorder};

    let spec = SpecFile::parse(spec_text).map_err(|e| bad_request(&e))?;
    let soc = spec.soc().map_err(|e| bad_request(&e))?;
    let workload = spec.workload().map_err(|e| bad_request(&e))?;
    let names = spec.ip_names();
    let run = gables_soc_sim::run_gables_workload(&soc, &workload, &mut NullRecorder)
        .map_err(|e| Response::error(400, &e.to_string()))?;

    let jobs = Json::Array(
        run.jobs
            .iter()
            .map(|j| {
                let breakdown = Json::Object(
                    BindingConstraint::ALL
                        .iter()
                        .map(|&c| (c.label().to_string(), Json::num(j.breakdown.fraction(c))))
                        .collect(),
                );
                Json::Object(vec![
                    ("ip".into(), Json::num(j.ip as f64)),
                    (
                        "name".into(),
                        Json::str(
                            names
                                .get(j.ip)
                                .cloned()
                                .unwrap_or_else(|| format!("IP{}", j.ip)),
                        ),
                    ),
                    ("gflops".into(), Json::num(j.flops / 1e9)),
                    ("gbytes".into(), Json::num(j.bytes / 1e9)),
                    (
                        "dominant_bottleneck".into(),
                        Json::str(j.breakdown.dominant().label()),
                    ),
                    ("bottleneck_breakdown".into(), breakdown),
                ])
            })
            .collect(),
    );
    let doc = Json::Object(vec![
        ("makespan_seconds".into(), Json::num(run.makespan_seconds)),
        (
            "aggregate_gflops_per_sec".into(),
            Json::num(run.aggregate_flops_per_sec / 1e9),
        ),
        ("jobs".into(), jobs),
    ]);
    // The simulate report is JSON-native; ?format=text serves the same
    // document with a text/plain content type (finish() handles that).
    Ok(doc.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FIGURE_6B_SPEC;

    fn post(path: &str, query: Option<&str>, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: query.map(String::from),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn router() -> Router {
        build_router(
            Arc::new(ServerMetrics::new()),
            Arc::new(ShardedCache::new(4, 32)),
        )
    }

    #[test]
    fn parse_serve_args_defaults_and_overrides() {
        let opts = parse_serve_args(&[]).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7878");
        assert_eq!(opts.workers, 4);
        let opts =
            parse_serve_args(&["0.0.0.0:9000".into(), "--workers".into(), "2".into()]).unwrap();
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.workers, 2);
        assert!(parse_serve_args(&["--workers".into()]).is_err());
        assert!(parse_serve_args(&["--workers".into(), "0".into()]).is_err());
        assert!(parse_serve_args(&["--frob".into()]).is_err());
        assert!(parse_serve_args(&["a:1".into(), "b:2".into()]).is_err());
    }

    #[test]
    fn eval_text_format_matches_cli_output_exactly() {
        let resp = router().dispatch(&post("/eval", Some("format=text"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            eval_command(FIGURE_6B_SPEC).unwrap()
        );
    }

    #[test]
    fn eval_json_has_structured_fields() {
        let resp = router().dispatch(&post("/eval", None, FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let gops = doc.get("attainable_gops").and_then(Json::as_f64).unwrap();
        assert!((gops - 1.3278).abs() < 1e-3, "{gops}");
        assert_eq!(
            doc.get("bottleneck").and_then(Json::as_str),
            Some("memory interface")
        );
        assert!(doc
            .get("output")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Pattainable"));
    }

    #[test]
    fn eval_accepts_a_json_wrapped_spec() {
        let body = Json::Object(vec![("spec".into(), Json::str(FIGURE_6B_SPEC))]).to_string();
        let resp = router().dispatch(&post("/eval", None, &body));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn eval_rejects_empty_and_invalid_bodies() {
        assert_eq!(router().dispatch(&post("/eval", None, "")).status, 400);
        assert_eq!(
            router()
                .dispatch(&post("/eval", None, "{\"nope\": 1}"))
                .status,
            400
        );
        assert_eq!(
            router()
                .dispatch(&post("/eval", None, "[soc]\nbogus = 1\n"))
                .status,
            400
        );
    }

    #[test]
    fn sweep_defaults_to_an_intensity_sweep() {
        let resp = router().dispatch(&post("/sweep", None, FIGURE_6B_SPEC));
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("param").and_then(Json::as_str), Some("intensity"));
        let out = doc.get("output").and_then(Json::as_str).unwrap();
        assert!(out.contains("I(ops/B)"), "{out}");
        assert_eq!(out.lines().count(), 18, "header + 17 rows");
    }

    #[test]
    fn sweep_accepts_explicit_params_and_rejects_bad_ones() {
        let resp = router().dispatch(&post(
            "/sweep",
            Some("param=bpeak&from=5&to=40&steps=4"),
            FIGURE_6B_SPEC,
        ));
        assert_eq!(resp.status, 200);
        let resp = router().dispatch(&post("/sweep", Some("from=banana"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 400);
        let resp = router().dispatch(&post("/sweep", Some("param=nope"), FIGURE_6B_SPEC));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn whatif_needs_json_body_with_edits() {
        let body = Json::Object(vec![
            ("spec".into(), Json::str(FIGURE_6B_SPEC)),
            ("edits".into(), Json::str("set_bpeak 30; set_intensity 1 8")),
        ])
        .to_string();
        let resp = router().dispatch(&post("/whatif", None, &body));
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(doc
            .get("output")
            .and_then(Json::as_str)
            .unwrap()
            .contains("baseline"));
        // Raw spec text (no edits field) is a clear 400.
        let resp = router().dispatch(&post("/whatif", None, FIGURE_6B_SPEC));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn simulate_reports_per_job_attribution() {
        let resp = router().dispatch(&post("/simulate", None, FIGURE_6B_SPEC));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(doc.get("makespan_seconds").and_then(Json::as_f64).unwrap() > 0.0);
        let jobs = doc.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        let cpu = &jobs[0];
        assert_eq!(cpu.get("name").and_then(Json::as_str), Some("CPU"));
        let breakdown = cpu
            .get("bottleneck_breakdown")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(breakdown.len(), 6);
        let total: f64 = breakdown.iter().map(|(_, v)| v.as_f64().unwrap()).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fractions sum to 1, got {total}"
        );
        assert!(cpu
            .get("dominant_bottleneck")
            .and_then(Json::as_str)
            .is_some());
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let metrics = Arc::new(ServerMetrics::new());
        let router = build_router(Arc::clone(&metrics), Arc::new(ShardedCache::new(4, 32)));
        let first = router.dispatch(&post("/eval", None, FIGURE_6B_SPEC));
        // Cosmetically different spelling of the same spec still hits.
        let respelled = format!("# a comment\n{}", FIGURE_6B_SPEC.replace(" = ", "="));
        let second = router.dispatch(&post("/eval", None, &respelled));
        assert_eq!(first.body, second.body);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.cache_misses, 1);
        assert_eq!(snapshot.cache_hits, 1);
    }

    #[test]
    fn healthz_answers_ok() {
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        };
        let resp = router().dispatch(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }

    #[test]
    fn metrics_endpoint_reports_both_formats() {
        let metrics = Arc::new(ServerMetrics::new());
        let router = build_router(Arc::clone(&metrics), Arc::new(ShardedCache::new(4, 32)));
        let req = |q: Option<&str>| Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: q.map(String::from),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let resp = router.dispatch(&req(None));
        assert_eq!(resp.status, 200);
        assert!(Json::parse(std::str::from_utf8(&resp.body).unwrap()).is_ok());
        let resp = router.dispatch(&req(Some("format=text")));
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("gables-serve metrics"));
    }
}
