//! The Gables spec-file format and its parser.
//!
//! A small INI-style format describing a SoC, a workload, and optional
//! extensions — the file-based analog of the paper's interactive tool
//! inputs. No external parser crates are among the approved offline
//! dependencies, so the format is parsed in-tree.
//!
//! ```text
//! # Figure 6b of the paper
//! [soc]
//! ppeak_gops = 40
//! bpeak_gbps = 10
//!
//! [ip.CPU]                # first [ip.*] section is IP[0], the CPU
//! bandwidth_gbps = 6
//!
//! [ip.GPU]
//! acceleration = 5
//! bandwidth_gbps = 15
//!
//! [workload]
//! fractions   = 0.25, 0.75   # one per IP, in section order
//! intensities = 8, 0.1       # ops/byte
//!
//! [sram]                     # optional Section V-A extension
//! miss_ratios = 1.0, 0.1
//! ```

use std::fmt;

use gables_model::ext::sram::MemorySideSram;
use gables_model::units::{BytesPerSec, MissRatio, OpsPerByte, OpsPerSec, WorkFraction};
use gables_model::{ErrorKind, GablesError, SocSpec, WorkAssignment, Workload};

/// The machine-readable kind reported for input errors that have no
/// model-level [`ErrorKind`] — malformed INI/JSON, missing sections or
/// keys, unparseable numbers. Together with [`ErrorKind::code`] values
/// this forms the closed `kind` vocabulary of the `/v1` error envelope.
pub const SPEC_PARSE_KIND: &str = "spec_parse";

/// A parse or build error with the offending line number when known.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// 1-based line number, when attributable.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
    /// The model-level error category, when the failure came from (or
    /// maps onto) a [`GablesError`]. `None` means a transport/parse
    /// problem, reported as [`SPEC_PARSE_KIND`].
    pub kind: Option<ErrorKind>,
}

impl SpecError {
    /// An error attributed to a 1-based source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line: Some(line),
            message: message.into(),
            kind: None,
        }
    }

    /// An error with no attributable source line.
    pub fn general(message: impl Into<String>) -> Self {
        Self {
            line: None,
            message: message.into(),
            kind: None,
        }
    }

    /// Tags this error with a model-level category.
    pub fn with_kind(mut self, kind: ErrorKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// The closed machine-readable code for this error: the model
    /// [`ErrorKind::code`] when known, [`SPEC_PARSE_KIND`] otherwise.
    pub fn code(&self) -> &'static str {
        self.kind.map(ErrorKind::code).unwrap_or(SPEC_PARSE_KIND)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<GablesError> for SpecError {
    fn from(e: GablesError) -> Self {
        SpecError::general(e.to_string()).with_kind(e.kind())
    }
}

/// A byte range into [`SpecFile::canonical`]. Keys, values, and section
/// names are stored as spans instead of owned strings: the canonical
/// text already contains every trimmed key and comma-collapsed value,
/// so the parser's only allocations are the canonical buffer itself and
/// the section vectors — not two heap strings per key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Span {
    start: u32,
    len: u32,
}

impl Span {
    fn new(start: usize, len: usize) -> Self {
        Span {
            start: start as u32,
            len: len as u32,
        }
    }

    fn resolve<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start as usize..(self.start + self.len) as usize]
    }
}

/// A section body: key -> (line number, value), kept in file order, with
/// both key and value as spans into the canonical text.
///
/// Sections hold a handful of keys, so a linear-scan `Vec` beats a tree
/// map on the parse hot path: one allocation per section instead of one
/// per node, and lookups walk a single contiguous buffer.
#[derive(Debug, Clone, PartialEq, Default)]
struct SectionBody(Vec<(Span, (usize, Span))>);

impl SectionBody {
    /// Resolves `key` against the canonical `text` this body indexes.
    fn get<'a>(&self, text: &'a str, key: &str) -> Option<(usize, &'a str)> {
        self.0
            .iter()
            .find(|(k, _)| k.resolve(text) == key)
            .map(|(_, (line, v))| (*line, v.resolve(text)))
    }

    fn contains_key(&self, text: &str, key: &str) -> bool {
        self.get(text, key).is_some()
    }

    /// Appends a key; `false` (without inserting) if it already exists.
    fn insert_new(&mut self, text: &str, key: Span, value: (usize, Span)) -> bool {
        if self.contains_key(text, key.resolve(text)) {
            return false;
        }
        self.0.push((key, value));
        true
    }
}

/// A parsed (but not yet validated) spec file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecFile {
    /// Sections in file order: `(section name span, body)`.
    sections: Vec<(Span, SectionBody)>,
    /// The canonicalized source text (see [`canonicalize`]), built in
    /// the same pass that parses, so cache keys never re-normalize and
    /// every key/value span resolves against it.
    canonical: String,
}

impl SpecFile {
    /// Parses the INI-style text, building the canonical text (exactly
    /// what [`canonicalize`] produces) in the same pass.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with a line number for malformed lines.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        if text.len() > u32::MAX as usize {
            return Err(SpecError::general("spec text too large"));
        }
        let mut sections: Vec<(Span, SectionBody)> = Vec::new();
        let mut canonical = String::with_capacity(text.len());
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let line_start = canonical.len();
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(SpecError::at(n, "unterminated section header"));
                };
                let name = name.trim();
                if name.is_empty() {
                    return Err(SpecError::at(n, "empty section name"));
                }
                // canonicalize() keeps header lines verbatim; the span
                // points at the trimmed name inside the brackets.
                canonical.push_str(line);
                canonical.push('\n');
                let offset = name.as_ptr() as usize - line.as_ptr() as usize;
                let span = Span::new(line_start + offset, name.len());
                sections.push((span, SectionBody::default()));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError::at(
                    n,
                    format!("expected `key = value`, got {line:?}"),
                ));
            };
            let Some((_, body)) = sections.last_mut() else {
                return Err(SpecError::at(n, "key before any [section]"));
            };
            let key = key.trim();
            // canonicalize() writes `key=` then the comma-collapsed
            // value; the spans index straight into those bytes.
            canonical.push_str(key);
            let key_span = Span::new(line_start, key.len());
            canonical.push('=');
            let value_start = canonical.len();
            for (i, piece) in value.split(',').enumerate() {
                if i > 0 {
                    canonical.push(',');
                }
                canonical.push_str(piece.trim());
            }
            let value_span = Span::new(value_start, canonical.len() - value_start);
            canonical.push('\n');
            if !body.insert_new(&canonical, key_span, (n, value_span)) {
                return Err(SpecError::at(n, format!("duplicate key {key:?}")));
            }
        }
        Ok(Self {
            sections,
            canonical,
        })
    }

    /// The canonicalized source text, suitable as a cache key (see
    /// [`canonicalize`]).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    fn section(&self, name: &str) -> Option<&SectionBody> {
        self.sections
            .iter()
            .find(|(s, _)| s.resolve(&self.canonical) == name)
            .map(|(_, body)| body)
    }

    /// IP sections in file order: `(ip name, body)`. An iterator, not a
    /// collected `Vec` — callers count or walk it, and the hot eval path
    /// calls this three times per request.
    fn ip_sections(&self) -> impl Iterator<Item = (&str, &SectionBody)> {
        self.sections.iter().filter_map(|(s, body)| {
            s.resolve(&self.canonical)
                .strip_prefix("ip.")
                .map(|name| (name.trim(), body))
        })
    }

    /// Looks up and parses one numeric value, returning its source line
    /// for error attribution. Non-finite results (`nan`, `inf`, and
    /// overflow literals like `1e400` — all of which `f64::from_str`
    /// accepts) are rejected here, at the input boundary, in every build
    /// profile, so garbage can never reach the model or the cache key.
    fn raw_number(
        &self,
        body: &SectionBody,
        key: &str,
        section: &str,
    ) -> Result<(usize, f64), SpecError> {
        let (line, value) = body
            .get(&self.canonical, key)
            .ok_or_else(|| SpecError::general(format!("[{section}] missing key {key:?}")))?;
        let parsed = value.parse::<f64>().map_err(|_| {
            SpecError::at(
                line,
                format!("[{section}] {key} is not a number: {value:?}"),
            )
        })?;
        if !parsed.is_finite() {
            return Err(SpecError::at(
                line,
                format!("[{section}] {key} must be finite, got {value:?}"),
            )
            .with_kind(ErrorKind::InvalidParameter));
        }
        Ok((line, parsed))
    }

    fn number(&self, body: &SectionBody, key: &str, section: &str) -> Result<f64, SpecError> {
        self.raw_number(body, key, section).map(|(_, v)| v)
    }

    /// Like [`Self::raw_number`] for non-negative integer keys (cache
    /// geometry counts), rejecting fractions, signs, and junk outright
    /// via `u64::from_str`.
    fn raw_integer(
        &self,
        body: &SectionBody,
        key: &str,
        section: &str,
    ) -> Result<(usize, u64), SpecError> {
        let (line, value) = body
            .get(&self.canonical, key)
            .ok_or_else(|| SpecError::general(format!("[{section}] missing key {key:?}")))?;
        let parsed = value.parse::<u64>().map_err(|_| {
            SpecError::at(
                line,
                format!("[{section}] {key} is not a non-negative integer: {value:?}"),
            )
        })?;
        Ok((line, parsed))
    }

    /// Like [`Self::raw_number`] for a comma-separated list, rejecting
    /// non-finite entries with the entry index in the message.
    fn raw_number_list(
        &self,
        body: &SectionBody,
        key: &str,
        section: &str,
    ) -> Result<(usize, Vec<f64>), SpecError> {
        let (line, value) = body
            .get(&self.canonical, key)
            .ok_or_else(|| SpecError::general(format!("[{section}] missing key {key:?}")))?;
        let values = value
            .split(',')
            .enumerate()
            .map(|(idx, v)| {
                let parsed = v.trim().parse::<f64>().map_err(|_| {
                    SpecError::at(
                        line,
                        format!(
                            "[{section}] {key} entry {idx} is not a number: {:?}",
                            v.trim()
                        ),
                    )
                })?;
                if !parsed.is_finite() {
                    return Err(SpecError::at(
                        line,
                        format!(
                            "[{section}] {key} entry {idx} must be finite, got {:?}",
                            v.trim()
                        ),
                    )
                    .with_kind(ErrorKind::InvalidParameter));
                }
                Ok(parsed)
            })
            .collect::<Result<Vec<f64>, SpecError>>()?;
        Ok((line, values))
    }

    fn number_list(
        &self,
        body: &SectionBody,
        key: &str,
        section: &str,
    ) -> Result<Vec<f64>, SpecError> {
        self.raw_number_list(body, key, section).map(|(_, v)| v)
    }

    /// Builds the SoC specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for missing sections/keys or invalid model
    /// parameters.
    pub fn soc(&self) -> Result<SocSpec, SpecError> {
        let soc = self
            .section("soc")
            .ok_or_else(|| SpecError::general("missing [soc] section"))?;
        let (ppeak_line, ppeak) = self.raw_number(soc, "ppeak_gops", "soc")?;
        let ppeak = OpsPerSec::try_from_gops(ppeak).map_err(|e| {
            SpecError::at(ppeak_line, format!("[soc] ppeak_gops: {e}")).with_kind(e.kind())
        })?;
        let (bpeak_line, bpeak) = self.raw_number(soc, "bpeak_gbps", "soc")?;
        let bpeak = BytesPerSec::try_from_gbps(bpeak).map_err(|e| {
            SpecError::at(bpeak_line, format!("[soc] bpeak_gbps: {e}")).with_kind(e.kind())
        })?;
        let mut b = SocSpec::builder();
        b.ppeak(ppeak).bpeak(bpeak);
        let mut ip_count = 0usize;
        for (i, (name, body)) in self.ip_sections().enumerate() {
            ip_count += 1;
            let section = format!("ip.{name}");
            let (bw_line, bw) = self.raw_number(body, "bandwidth_gbps", &section)?;
            let bw = BytesPerSec::try_from_gbps(bw).map_err(|e| {
                SpecError::at(bw_line, format!("[{section}] bandwidth_gbps: {e}"))
                    .with_kind(e.kind())
            })?;
            if i == 0 {
                if body.contains_key(&self.canonical, "acceleration") {
                    let (a_line, a) = self.raw_number(body, "acceleration", &section)?;
                    if (a - 1.0).abs() > 1e-12 {
                        return Err(SpecError::at(
                            a_line,
                            format!(
                                "[{section}] is IP[0] (the CPU); its acceleration must be 1, got {a}"
                            ),
                        ));
                    }
                }
                b.cpu(name, bw);
            } else {
                let (a_line, a) = self.raw_number(body, "acceleration", &section)?;
                b.accelerator(name, a, bw).map_err(|e| {
                    SpecError::at(a_line, format!("[{section}] acceleration: {e}"))
                        .with_kind(e.kind())
                })?;
            }
        }
        if ip_count == 0 {
            return Err(SpecError::general("no [ip.<name>] sections"));
        }
        Ok(b.build()?)
    }

    /// Builds the workload (aligned with the IP section order).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for missing keys, length mismatches, or
    /// invalid fractions/intensities.
    pub fn workload(&self) -> Result<Workload, SpecError> {
        let w = self
            .section("workload")
            .ok_or_else(|| SpecError::general("missing [workload] section"))?;
        let (f_line, fractions) = self.raw_number_list(w, "fractions", "workload")?;
        let (i_line, intensities) = self.raw_number_list(w, "intensities", "workload")?;
        let n = self.ip_sections().count();
        if fractions.len() != n || intensities.len() != n {
            return Err(SpecError::general(format!(
                "workload lists must have one entry per IP ({n}); got {} fractions, {} intensities",
                fractions.len(),
                intensities.len()
            )));
        }
        let mut assignments = Vec::with_capacity(n);
        for (idx, (f, i)) in fractions.iter().zip(&intensities).enumerate() {
            let f = WorkFraction::new(*f).map_err(|e| {
                SpecError::at(f_line, format!("[workload] fractions entry {idx}: {e}"))
                    .with_kind(e.kind())
            })?;
            let i = OpsPerByte::try_new(*i).map_err(|e| {
                SpecError::at(i_line, format!("[workload] intensities entry {idx}: {e}"))
                    .with_kind(e.kind())
            })?;
            assignments.push(WorkAssignment::new(f, i).map_err(|e| {
                SpecError::at(i_line, format!("[workload] intensities entry {idx}: {e}"))
                    .with_kind(e.kind())
            })?);
        }
        Ok(Workload::from_assignments(assignments)?)
    }

    /// Builds the optional memory-side SRAM extension, if a `[sram]`
    /// section is present.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for malformed miss ratios or a length
    /// mismatch with the IP sections.
    pub fn sram(&self) -> Result<Option<MemorySideSram>, SpecError> {
        let Some(body) = self.section("sram") else {
            return Ok(None);
        };
        let (line, ratios) = self.raw_number_list(body, "miss_ratios", "sram")?;
        if ratios.len() != self.ip_sections().count() {
            return Err(SpecError::general(
                "sram miss_ratios must have one entry per IP",
            ));
        }
        let ratios = ratios
            .into_iter()
            .enumerate()
            .map(|(idx, r)| {
                MissRatio::new(r).map_err(|e| {
                    SpecError::at(line, format!("[sram] miss_ratios entry {idx}: {e}"))
                        .with_kind(e.kind())
                })
            })
            .collect::<Result<Vec<MissRatio>, SpecError>>()?;
        Ok(Some(MemorySideSram::new(ratios)))
    }

    /// Builds the optional cache-hierarchy description for the CARM
    /// subsystem from `[cache.<level>]` sections (one per level, file
    /// order, nearest level first), plus an optional plain `[cache]`
    /// section for DRAM parameters:
    ///
    /// ```text
    /// [cache]
    /// dram_latency_ns = 80       # optional, default 80
    ///
    /// [cache.l1]
    /// capacity_kib  = 32         # required
    /// latency_ns    = 1.2        # required
    /// line_bytes    = 64         # optional, default 64
    /// associativity = 8          # optional, default 8
    /// policy        = lru        # optional: lru | mru | way_prediction
    /// victim_lines  = 0          # optional, default 0
    /// ```
    ///
    /// Returns `Ok(None)` when the spec has no `[cache.*]` sections.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with the closed `invalid_cache_config` kind
    /// and key+section+line context for malformed hierarchies: zero
    /// capacity or sets, non-power-of-two line size, unknown policy,
    /// non-positive latency, and level ordering violations.
    pub fn cache_hierarchy(&self) -> Result<Option<gables_soc_sim::HierarchyConfig>, SpecError> {
        use gables_soc_sim::cache_sim::CacheConfig;
        use gables_soc_sim::{HierarchyConfig, LevelConfig, ReplacementPolicy};

        let level_sections: Vec<(&str, &SectionBody)> = self
            .sections
            .iter()
            .filter_map(|(s, body)| {
                s.resolve(&self.canonical)
                    .strip_prefix("cache.")
                    .map(|name| (name.trim(), body))
            })
            .collect();
        if level_sections.is_empty() {
            return Ok(None);
        }
        let kind = ErrorKind::InvalidCacheConfig;
        let mut levels = Vec::new();
        let mut prev: Option<(String, u64)> = None;
        for (name, body) in level_sections {
            let section = format!("cache.{name}");
            let (cap_line, cap_kib) = self
                .raw_integer(body, "capacity_kib", &section)
                .map_err(|e| e.with_kind(kind))?;
            if cap_kib == 0 {
                return Err(SpecError::at(
                    cap_line,
                    format!("[{section}] capacity_kib must be positive"),
                )
                .with_kind(kind));
            }
            let capacity_bytes = cap_kib * 1024;
            let opt_int = |key: &str, default: u64| -> Result<(usize, u64), SpecError> {
                if body.contains_key(&self.canonical, key) {
                    self.raw_integer(body, key, &section)
                        .map_err(|e| e.with_kind(kind))
                } else {
                    // Defaults are always valid; violations therefore
                    // always have a real line. Fall back to the capacity
                    // line so the type stays simple.
                    Ok((cap_line, default))
                }
            };
            let (line_line, line_bytes) = opt_int("line_bytes", 64)?;
            if line_bytes == 0 || !line_bytes.is_power_of_two() {
                return Err(SpecError::at(
                    line_line,
                    format!("[{section}] line_bytes {line_bytes} must be a power of two"),
                )
                .with_kind(kind));
            }
            let (assoc_line, associativity) = opt_int("associativity", 8)?;
            if associativity == 0 || associativity > u64::from(u32::MAX) {
                return Err(SpecError::at(
                    assoc_line,
                    format!("[{section}] associativity {associativity} must be in 1..=2^32-1"),
                )
                .with_kind(kind));
            }
            let (victim_line, victim_lines) = opt_int("victim_lines", 0)?;
            if victim_lines > u64::from(u32::MAX) {
                return Err(SpecError::at(
                    victim_line,
                    format!("[{section}] victim_lines {victim_lines} is out of range"),
                )
                .with_kind(kind));
            }
            let (lat_line, latency_ns) = self
                .raw_number(body, "latency_ns", &section)
                .map_err(|e| e.with_kind(kind))?;
            if latency_ns <= 0.0 {
                return Err(SpecError::at(
                    lat_line,
                    format!("[{section}] latency_ns must be positive, got {latency_ns}"),
                )
                .with_kind(kind));
            }
            let policy = match body.get(&self.canonical, "policy") {
                None => ReplacementPolicy::Lru,
                Some((line, value)) => ReplacementPolicy::parse(value).ok_or_else(|| {
                    SpecError::at(
                        line,
                        format!(
                            "[{section}] policy {value:?} must be one of lru, mru, \
                             way_prediction"
                        ),
                    )
                    .with_kind(kind)
                })?,
            };
            let geometry = CacheConfig {
                capacity_bytes,
                line_bytes,
                associativity: associativity as u32,
            };
            // Remaining geometry failures (capacity below one set — the
            // zero-sets case — and a non-power-of-two set count) involve
            // several keys at once; attribute them to the capacity line.
            let single = gables_soc_sim::HierarchyConfig {
                levels: vec![LevelConfig {
                    name: name.to_string(),
                    geometry,
                    latency_ns,
                    policy,
                    victim_lines: victim_lines as u32,
                }],
                dram_latency_ns: 1.0,
            };
            if let Err(e) = single.validate() {
                return Err(SpecError::at(cap_line, format!("[{section}] {e}")).with_kind(kind));
            }
            if let Some((prev_name, prev_cap)) = &prev {
                if capacity_bytes <= *prev_cap {
                    return Err(SpecError::at(
                        cap_line,
                        format!(
                            "[{section}] capacity_kib: level ordering violation — {name} \
                             ({capacity_bytes} bytes) must be larger than {prev_name} \
                             ({prev_cap} bytes)"
                        ),
                    )
                    .with_kind(kind));
                }
            }
            prev = Some((name.to_string(), capacity_bytes));
            levels.push(LevelConfig {
                name: name.to_string(),
                geometry,
                latency_ns,
                policy,
                victim_lines: victim_lines as u32,
            });
        }
        let dram_latency_ns = match self.section("cache") {
            Some(body) if body.contains_key(&self.canonical, "dram_latency_ns") => {
                let (line, v) = self
                    .raw_number(body, "dram_latency_ns", "cache")
                    .map_err(|e| e.with_kind(kind))?;
                if v <= 0.0 {
                    return Err(SpecError::at(
                        line,
                        format!("[cache] dram_latency_ns must be positive, got {v}"),
                    )
                    .with_kind(kind));
                }
                v
            }
            _ => 80.0,
        };
        let config = HierarchyConfig {
            levels,
            dram_latency_ns,
        };
        // Backstop: every per-key check above should have caught any
        // problem already, but the simulator's own validation is the
        // final word.
        config
            .validate()
            .map_err(|e| SpecError::general(format!("cache hierarchy: {e}")).with_kind(kind))?;
        Ok(Some(config))
    }

    /// Builds the optional design-space exploration grid from an
    /// `[explore]` section:
    ///
    /// ```text
    /// [explore]
    /// accelerations = 2, 5, 10
    /// b1_gbps       = 5, 15, 30
    /// bpeak_gbps    = 10, 20, 40
    /// # optional cost weights (default 1 each, base 0):
    /// cost_per_gops = 0.5
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for malformed lists or a spec without
    /// exactly two IPs (the grid explores CPU + one accelerator).
    pub fn explore_grid(
        &self,
    ) -> Result<
        Option<(
            gables_model::explore::CandidateGrid,
            gables_model::explore::CostModel,
        )>,
        SpecError,
    > {
        use gables_model::explore::{CandidateGrid, CostModel};
        let Some(body) = self.section("explore") else {
            return Ok(None);
        };
        let soc = self.soc()?;
        if soc.ip_count() != 2 {
            return Err(SpecError::general(
                "[explore] requires exactly two [ip.*] sections (CPU + accelerator)",
            ));
        }
        let grid = CandidateGrid {
            ppeak_gops: soc.ppeak().to_gops(),
            b0_gbps: soc.ip(0)?.bandwidth().to_gbps(),
            accelerations: self.number_list(body, "accelerations", "explore")?,
            b1_gbps: self.number_list(body, "b1_gbps", "explore")?,
            bpeak_gbps: self.number_list(body, "bpeak_gbps", "explore")?,
        };
        let opt = |key: &str, default: f64| -> Result<f64, SpecError> {
            if body.contains_key(&self.canonical, key) {
                self.number(body, key, "explore")
            } else {
                Ok(default)
            }
        };
        let cost = CostModel {
            base: opt("cost_base", 0.0)?,
            per_accelerator_gops: opt("cost_per_gops", 1.0)?,
            per_port_gbps: opt("cost_per_port_gbps", 1.0)?,
            per_dram_gbps: opt("cost_per_dram_gbps", 1.0)?,
        };
        Ok(Some((grid, cost)))
    }

    /// The IP names in model order.
    pub fn ip_names(&self) -> Vec<String> {
        self.ip_sections()
            .map(|(name, _)| name.to_string())
            .collect()
    }
}

/// A parsed spec input, whatever the carrier: raw INI text (files, CLI)
/// or the JSON envelope `{"spec": "...", "edits": "..."}` the HTTP tier
/// accepts. This is the single entry point shared by every CLI
/// subcommand and serve endpoint — the two carriers are unambiguous
/// because spec files start with `#` or `[` while JSON starts with `{`.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// Raw INI spec text.
    Ini(SpecFile),
    /// A JSON envelope wrapping spec text, optionally with a what-if
    /// edit chain.
    Json {
        /// The spec parsed from the envelope's `"spec"` string field.
        file: SpecFile,
        /// The envelope's optional `"edits"` string field.
        edits: Option<String>,
    },
}

impl Spec {
    /// Parses either carrier.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for empty input, malformed JSON, an
    /// envelope without a string `"spec"` field, or malformed spec text.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        use gables_model::json::Json;
        let trimmed = text.trim_start();
        if trimmed.starts_with('{') {
            let doc =
                Json::parse(text).map_err(|e| SpecError::general(format!("request JSON: {e}")))?;
            let spec_text = doc.get("spec").and_then(Json::as_str).ok_or_else(|| {
                SpecError::general("JSON envelope must have a string \"spec\" field")
            })?;
            let edits = doc.get("edits").and_then(Json::as_str).map(str::to_string);
            Ok(Spec::Json {
                file: SpecFile::parse(spec_text)?,
                edits,
            })
        } else if trimmed.is_empty() {
            Err(SpecError::general(
                "empty input: send spec text or {\"spec\": \"...\"}",
            ))
        } else {
            Ok(Spec::Ini(SpecFile::parse(text)?))
        }
    }

    /// The underlying parsed spec file, whichever carrier it arrived in.
    pub fn file(&self) -> &SpecFile {
        match self {
            Spec::Ini(file) | Spec::Json { file, .. } => file,
        }
    }

    /// The edit chain from a JSON envelope, if one was supplied.
    pub fn edits(&self) -> Option<&str> {
        match self {
            Spec::Ini(_) => None,
            Spec::Json { edits, .. } => edits.as_deref(),
        }
    }

    /// The canonical cache key for this spec: the canonicalized spec
    /// text regardless of carrier, so the same design wrapped in JSON
    /// and sent raw share one cache entry.
    pub fn canonical_key(&self) -> &str {
        self.file().canonical()
    }

    /// Builds the SoC specification (see [`SpecFile::soc`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for missing sections/keys or invalid model
    /// parameters.
    pub fn soc(&self) -> Result<SocSpec, SpecError> {
        self.file().soc()
    }

    /// Builds the workload (see [`SpecFile::workload`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for missing keys, length mismatches, or
    /// invalid fractions/intensities.
    pub fn workload(&self) -> Result<Workload, SpecError> {
        self.file().workload()
    }

    /// Builds the optional SRAM extension (see [`SpecFile::sram`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for malformed miss ratios or a length
    /// mismatch with the IP sections.
    pub fn sram(&self) -> Result<Option<MemorySideSram>, SpecError> {
        self.file().sram()
    }

    /// Builds the optional cache hierarchy (see
    /// [`SpecFile::cache_hierarchy`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with the `invalid_cache_config` kind for
    /// malformed hierarchies.
    pub fn cache_hierarchy(&self) -> Result<Option<gables_soc_sim::HierarchyConfig>, SpecError> {
        self.file().cache_hierarchy()
    }

    /// Builds the optional exploration grid (see
    /// [`SpecFile::explore_grid`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for malformed lists or a spec without
    /// exactly two IPs.
    #[allow(clippy::type_complexity)]
    pub fn explore_grid(
        &self,
    ) -> Result<
        Option<(
            gables_model::explore::CandidateGrid,
            gables_model::explore::CostModel,
        )>,
        SpecError,
    > {
        self.file().explore_grid()
    }

    /// The IP names in model order (see [`SpecFile::ip_names`]).
    pub fn ip_names(&self) -> Vec<String> {
        self.file().ip_names()
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Normalizes spec text for use as a cache key: comments and blank lines
/// are dropped, whitespace around keys/values/section headers is
/// collapsed, so cosmetically different spellings of the same spec map
/// to the same string. This is purely textual — it does not validate the
/// spec, so it is cheap enough to run on every request.
pub fn canonicalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let line = strip_comment(line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push_str(key.trim());
            out.push('=');
            // Collapse spacing inside list values ("8, 0.1" == "8,0.1"),
            // writing the pieces straight into the output buffer.
            for (idx, piece) in value.split(',').enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                out.push_str(piece.trim());
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// A ready-to-use spec string for the paper's Figure 6b scenario (used by
/// `gables example` and tests).
pub const FIGURE_6B_SPEC: &str = "\
# Gables spec: the paper's Figure 6b scenario
[soc]
ppeak_gops = 40
bpeak_gbps = 10

[ip.CPU]
bandwidth_gbps = 6

[ip.GPU]
acceleration = 5
bandwidth_gbps = 15

[workload]
fractions   = 0.25, 0.75
intensities = 8, 0.1
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_6b_spec_round_trips() {
        let spec = SpecFile::parse(FIGURE_6B_SPEC).unwrap();
        let soc = spec.soc().unwrap();
        let w = spec.workload().unwrap();
        assert_eq!(spec.ip_names(), vec!["CPU", "GPU"]);
        let eval = gables_model::evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().to_gops() - 1.3278).abs() < 1e-3);
        assert!(spec.sram().unwrap().is_none());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# leading comment\n[soc] # trailing\nppeak_gops = 1 # eol\nbpeak_gbps = 1\n\n[ip.CPU]\nbandwidth_gbps = 1\n[workload]\nfractions = 1\nintensities = 8\n";
        let spec = SpecFile::parse(text).unwrap();
        assert!(spec.soc().is_ok());
        assert!(spec.workload().is_ok());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = SpecFile::parse("[soc\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.to_string().contains("line 1"));

        let err = SpecFile::parse("key = 1\n").unwrap_err();
        assert!(err.message.contains("before any"));

        let err = SpecFile::parse("[soc]\nnonsense\n").unwrap_err();
        assert_eq!(err.line, Some(2));

        let err = SpecFile::parse("[soc]\nx = 1\nx = 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));

        let err = SpecFile::parse("[]\n").unwrap_err();
        assert!(err.message.contains("empty section"));
    }

    #[test]
    fn missing_pieces_are_reported() {
        let spec = SpecFile::parse("[workload]\nfractions = 1\nintensities = 1\n").unwrap();
        assert!(spec.soc().unwrap_err().message.contains("[soc]"));

        let spec = SpecFile::parse("[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n").unwrap();
        assert!(spec.soc().unwrap_err().message.contains("no [ip"));

        let spec = SpecFile::parse(FIGURE_6B_SPEC).unwrap();
        assert!(spec.workload().is_ok());
        let no_wl = SpecFile::parse(
            "[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n",
        )
        .unwrap();
        assert!(no_wl.workload().unwrap_err().message.contains("[workload]"));
    }

    #[test]
    fn bad_numbers_are_line_attributed() {
        let text = "[soc]\nppeak_gops = forty\nbpeak_gbps = 1\n";
        let spec = SpecFile::parse(text).unwrap();
        let err = spec.soc().unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn errors_name_key_section_and_line() {
        // The offending key, its section, and the 1-based line number all
        // appear so a user can fix the spec without guessing.
        let text = "[soc]\nppeak_gops = forty\nbpeak_gbps = 1\n";
        let err = SpecFile::parse(text).unwrap().soc().unwrap_err();
        assert!(err.message.contains("[soc]"), "{err}");
        assert!(err.message.contains("ppeak_gops"), "{err}");
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().starts_with("line 2:"), "{err}");

        let text = "[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n[ip.GPU]\nacceleration = -2\nbandwidth_gbps = 1\n";
        let err = SpecFile::parse(text).unwrap().soc().unwrap_err();
        assert!(err.message.contains("[ip.GPU]"), "{err}");
        assert!(err.message.contains("acceleration"), "{err}");
        assert_eq!(err.line, Some(7));

        let text = format!(
            "{}\n[sram]\nmiss_ratios = 1.0, 2.5\n",
            FIGURE_6B_SPEC.trim_end()
        );
        let err = SpecFile::parse(&text).unwrap().sram().unwrap_err();
        assert!(err.message.contains("[sram]"), "{err}");
        assert!(err.message.contains("miss_ratios entry 1"), "{err}");
        assert!(err.line.is_some());
    }

    #[test]
    fn non_finite_literals_are_rejected_at_parse_boundary() {
        // `f64::from_str` happily parses all of these; the spec layer must
        // not let them through in any build profile.
        for bad in ["nan", "NaN", "inf", "infinity", "-inf", "1e400", "-1e400"] {
            let text = format!(
                "[soc]\nppeak_gops = {bad}\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n"
            );
            let err = SpecFile::parse(&text).unwrap().soc().unwrap_err();
            assert_eq!(err.line, Some(2), "{bad}: {err}");
            assert!(err.message.contains("ppeak_gops"), "{bad}: {err}");
            assert_eq!(err.code(), "invalid_parameter", "{bad}: {err}");

            let text = format!(
                "[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n[workload]\nfractions = 1\nintensities = {bad}\n"
            );
            let err = SpecFile::parse(&text).unwrap().workload().unwrap_err();
            assert!(err.message.contains("intensities"), "{bad}: {err}");
            assert_eq!(err.line, Some(8), "{bad}: {err}");
        }
    }

    #[test]
    fn degenerate_positive_values_are_rejected() {
        // -0.0, zero, and subnormals parse fine and are finite, but are
        // outside the model's domain for peak rates and bandwidths.
        for bad in ["-0.0", "0", "1e-310", "-5"] {
            let text = format!(
                "[soc]\nppeak_gops = 1\nbpeak_gbps = {bad}\n[ip.CPU]\nbandwidth_gbps = 1\n"
            );
            let err = SpecFile::parse(&text).unwrap().soc().unwrap_err();
            assert!(err.message.contains("bpeak_gbps"), "{bad}: {err}");
            assert_eq!(err.line, Some(3), "{bad}: {err}");
            assert_eq!(err.code(), "invalid_parameter", "{bad}: {err}");
        }
        // Huge-but-finite Gops/s values that overflow the canonical
        // ops/s scaling are caught with attribution too.
        let text = "[soc]\nppeak_gops = 1e305\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n";
        let err = SpecFile::parse(text).unwrap().soc().unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        assert_eq!(err.code(), "invalid_parameter");
    }

    #[test]
    fn spec_error_codes_are_closed() {
        // Parse-level problems report the spec_parse kind; model-level
        // problems carry their GablesError category.
        let err = SpecFile::parse("[soc\n").unwrap_err();
        assert_eq!(err.code(), SPEC_PARSE_KIND);
        let err = SpecError::from(GablesError::NoIps);
        assert_eq!(err.code(), "no_ips");
        let text = "[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n[workload]\nfractions = 0.5\nintensities = 1\n";
        let err = SpecFile::parse(text).unwrap().workload().unwrap_err();
        assert_eq!(err.code(), "work_fraction_sum");
    }

    #[test]
    fn cpu_acceleration_must_be_unity() {
        let text = "[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n[ip.CPU]\nacceleration = 2\nbandwidth_gbps = 1\n";
        let spec = SpecFile::parse(text).unwrap();
        assert!(spec
            .soc()
            .unwrap_err()
            .message
            .contains("acceleration must be 1"));
    }

    #[test]
    fn workload_length_mismatch() {
        let text = FIGURE_6B_SPEC.replace("fractions   = 0.25, 0.75", "fractions = 1");
        let spec = SpecFile::parse(&text).unwrap();
        assert!(spec
            .workload()
            .unwrap_err()
            .message
            .contains("one entry per IP"));
    }

    #[test]
    fn sram_section_builds_extension() {
        let text = format!("{FIGURE_6B_SPEC}\n[sram]\nmiss_ratios = 1.0, 0.1\n");
        let spec = SpecFile::parse(&text).unwrap();
        let sram = spec.sram().unwrap().expect("present");
        assert_eq!(sram.miss_ratios().len(), 2);
        let soc = spec.soc().unwrap();
        let w = spec.workload().unwrap();
        let eval = sram.evaluate(&soc, &w).unwrap();
        assert!(eval.attainable().to_gops() > 1.33);

        let bad = format!("{FIGURE_6B_SPEC}\n[sram]\nmiss_ratios = 1.0\n");
        let spec = SpecFile::parse(&bad).unwrap();
        assert!(spec.sram().is_err());
    }

    #[test]
    fn canonicalize_erases_cosmetic_differences() {
        let a = canonicalize(FIGURE_6B_SPEC);
        let b = canonicalize(
            "[soc]\n  ppeak_gops=40   # comment\nbpeak_gbps =  10\n\n\n[ip.CPU]\nbandwidth_gbps = 6\n[ip.GPU]\nacceleration=5\nbandwidth_gbps=15\n[workload]\nfractions = 0.25,0.75\nintensities = 8,0.1\n",
        );
        assert_eq!(a, b);
        // But a real change still changes the key.
        let c = canonicalize(&FIGURE_6B_SPEC.replace("bpeak_gbps = 10", "bpeak_gbps = 20"));
        assert_ne!(a, c);
    }

    #[test]
    fn spec_parses_raw_ini() {
        let spec = Spec::parse(FIGURE_6B_SPEC).unwrap();
        assert!(matches!(spec, Spec::Ini(_)));
        assert!(spec.edits().is_none());
        let eval = gables_model::evaluate(&spec.soc().unwrap(), &spec.workload().unwrap());
        assert!((eval.unwrap().attainable().to_gops() - 1.3278).abs() < 1e-3);
    }

    #[test]
    fn spec_parses_json_envelope_with_and_without_edits() {
        let escaped = FIGURE_6B_SPEC.replace('\n', "\\n");
        let bare = format!("{{\"spec\": \"{escaped}\"}}");
        let spec = Spec::parse(&bare).unwrap();
        assert!(matches!(spec, Spec::Json { .. }));
        assert!(spec.edits().is_none());
        assert_eq!(spec.ip_names(), vec!["CPU", "GPU"]);

        let with_edits = format!("{{\"spec\": \"{escaped}\", \"edits\": \"set_bpeak 20\"}}");
        let spec = Spec::parse(&with_edits).unwrap();
        assert_eq!(spec.edits(), Some("set_bpeak 20"));
    }

    #[test]
    fn spec_rejects_bad_carriers() {
        let err = Spec::parse("").unwrap_err();
        assert!(err.to_string().contains("empty input"), "{err}");

        let err = Spec::parse("{\"spec\": 42}").unwrap_err();
        assert!(err.to_string().contains("string \"spec\" field"), "{err}");

        let err = Spec::parse("{not json").unwrap_err();
        assert!(err.to_string().contains("request JSON"), "{err}");

        // Malformed values inside a valid envelope surface when built.
        let spec = Spec::parse("{\"spec\": \"[soc]\\nppeak_gops = no\"}").unwrap();
        assert!(spec.soc().is_err());
    }

    #[test]
    fn cache_hierarchy_parses_levels_in_file_order() {
        let text = format!(
            "{FIGURE_6B_SPEC}\n\
             [cache.l1]\ncapacity_kib = 4\nassociativity = 4\nlatency_ns = 1\n\
             [cache.l2]\ncapacity_kib = 32\nline_bytes = 128\nlatency_ns = 4\npolicy = mru\nvictim_lines = 4\n\
             [cache]\ndram_latency_ns = 60\n"
        );
        let spec = SpecFile::parse(&text).unwrap();
        let h = spec.cache_hierarchy().unwrap().expect("present");
        assert_eq!(h.levels.len(), 2);
        assert_eq!(h.levels[0].name, "l1");
        assert_eq!(h.levels[0].geometry.capacity_bytes, 4 * 1024);
        assert_eq!(h.levels[0].geometry.line_bytes, 64); // default
        assert_eq!(h.levels[0].geometry.associativity, 4);
        assert_eq!(h.levels[1].name, "l2");
        assert_eq!(h.levels[1].geometry.line_bytes, 128);
        assert_eq!(h.levels[1].policy.name(), "mru");
        assert_eq!(h.levels[1].victim_lines, 4);
        assert_eq!(h.dram_latency_ns, 60.0);

        // No [cache.*] sections at all: cleanly absent, not an error.
        let spec = SpecFile::parse(FIGURE_6B_SPEC).unwrap();
        assert!(spec.cache_hierarchy().unwrap().is_none());
    }

    #[test]
    fn cache_hierarchy_rejections_carry_code_and_line() {
        let check = |extra: &str, needle: &str| {
            let text = format!("{FIGURE_6B_SPEC}\n{extra}");
            let err = SpecFile::parse(&text)
                .unwrap()
                .cache_hierarchy()
                .unwrap_err();
            assert_eq!(err.code(), "invalid_cache_config", "{extra:?}: {err}");
            assert!(err.message.contains(needle), "{extra:?}: {err}");
            assert!(err.line.is_some(), "{extra:?} should name a line: {err}");
        };
        // Zero capacity (the zero-sets case).
        check(
            "[cache.l1]\ncapacity_kib = 0\nlatency_ns = 1\n",
            "capacity_kib",
        );
        // Non-power-of-two line size.
        check(
            "[cache.l1]\ncapacity_kib = 4\nline_bytes = 48\nlatency_ns = 1\n",
            "power of two",
        );
        // Unknown replacement policy.
        check(
            "[cache.l1]\ncapacity_kib = 4\nlatency_ns = 1\npolicy = rainbow\n",
            "lru, mru, way_prediction",
        );
        // Non-positive latency.
        check(
            "[cache.l1]\ncapacity_kib = 4\nlatency_ns = 0\n",
            "latency_ns",
        );
        // Level ordering violation: l2 not larger than l1.
        check(
            "[cache.l1]\ncapacity_kib = 32\nlatency_ns = 1\n\
             [cache.l2]\ncapacity_kib = 32\nlatency_ns = 4\n",
            "level ordering violation",
        );
        // Missing required capacity key.
        let text = format!("{FIGURE_6B_SPEC}\n[cache.l1]\nlatency_ns = 1\n");
        let err = SpecFile::parse(&text)
            .unwrap()
            .cache_hierarchy()
            .unwrap_err();
        assert_eq!(err.code(), "invalid_cache_config");
        assert!(err.message.contains("capacity_kib"), "{err}");
    }

    #[test]
    fn canonical_key_is_carrier_independent() {
        let ini = Spec::parse(FIGURE_6B_SPEC).unwrap();
        let respelled = FIGURE_6B_SPEC.replace("ppeak_gops = 40", "  ppeak_gops=40   # comment");
        let escaped = respelled.replace('\n', "\\n");
        let json = Spec::parse(&format!("{{\"spec\": \"{escaped}\"}}")).unwrap();
        assert_eq!(ini.canonical_key(), json.canonical_key());
    }
}
