//! The `gables` binary: a thin argv/filesystem wrapper over the library
//! command layer (see `gables_cli::run`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gables_cli::run(&args, &|path| std::fs::read_to_string(path)) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
