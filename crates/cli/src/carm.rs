//! `gables carm`: cache-aware rooflines whose per-level ceilings are
//! *measured*, not hand-entered.
//!
//! The command parses the spec's `[cache.<level>]` sections into a
//! hierarchy configuration, drives
//! [`gables_soc_sim::measure_bandwidth_ladder`] to measure one effective
//! bandwidth per level (plus DRAM), replays a uniform-random probe trace
//! through [`gables_soc_sim::HierarchySim`] to obtain the workload's
//! per-level traffic profile, and evaluates
//! [`gables_model::carm::CacheAwareRoofline`] across an intensity sweep
//! spanning all the knees. Everything downstream of the spec is
//! deterministic: the simulator uses in-tree SplitMix64 streams and the
//! sweep runs through `par::try_map`, so the rendered tables are
//! byte-identical across `--threads` policies.

use std::fmt::Write as _;

use gables_model::carm::{CacheAwareRoofline, CarmBinding, CarmPoint, TrafficProfile};
use gables_model::json::Json;
use gables_model::obs;
use gables_model::par::Parallelism;
use gables_model::rng::SplitMix64;
use gables_model::units::{BytesPerSec, OpsPerByte};
use gables_model::{ErrorKind, SocSpec};
use gables_plot::{render_carm, Series, VerticalMarker};
use gables_soc_sim::{measure_bandwidth_ladder, HierarchyConfig, HierarchySim, LevelBandwidth};

use crate::spec::{Spec, SpecError};

/// Seed for the ladder sweep; the profile trace derives its own stream.
const LADDER_SEED: u64 = 0xCAB1E;
/// Measured accesses per ladder rung (after the warm-up pass).
const LADDER_ACCESSES: u64 = 20_000;
/// Accesses in the traffic-profile probe trace.
const PROFILE_ACCESSES: u64 = 30_000;
/// Points in the intensity sweep.
const SWEEP_POINTS: usize = 33;

/// Everything `gables carm` computes, reused verbatim by `/v1/carm`.
#[derive(Debug, Clone, PartialEq)]
pub struct CarmReport {
    /// Measured effective bandwidth per level, nearest-first, DRAM last.
    pub ladder: Vec<LevelBandwidth>,
    /// The multi-ceiling roofline built from the ladder.
    pub roofline: CacheAwareRoofline,
    /// Per-level traffic fractions of the probe trace.
    pub profile: TrafficProfile,
    /// The evaluated intensity sweep.
    pub points: Vec<CarmPoint>,
}

fn sim_err(e: gables_soc_sim::SimError) -> SpecError {
    SpecError::general(e.to_string()).with_kind(ErrorKind::InvalidCacheConfig)
}

fn model_err(e: gables_model::GablesError) -> SpecError {
    SpecError::general(e.to_string()).with_kind(e.kind())
}

/// Parses spec text and builds the full CARM report.
///
/// # Errors
///
/// Returns [`SpecError`] for parse failures; hierarchy problems carry
/// the closed `invalid_cache_config` code, including the case of a spec
/// with no `[cache.<level>]` sections at all.
pub fn carm_report(text: &str, parallelism: Parallelism) -> Result<CarmReport, SpecError> {
    let spec = Spec::parse(text)?;
    let soc = spec.soc()?;
    let hierarchy = spec.cache_hierarchy()?.ok_or_else(|| {
        SpecError::general(
            "carm needs at least one [cache.<level>] section describing the hierarchy",
        )
        .with_kind(ErrorKind::InvalidCacheConfig)
    })?;
    build_report(&soc, &hierarchy, parallelism)
}

/// Builds the report from already-parsed inputs.
///
/// # Errors
///
/// Returns [`SpecError`] with the `invalid_cache_config` kind for
/// simulator configuration failures or a degenerate measured ladder.
pub fn build_report(
    soc: &SocSpec,
    hierarchy: &HierarchyConfig,
    parallelism: Parallelism,
) -> Result<CarmReport, SpecError> {
    let ladder = {
        let _span = obs::span("ladder_sweep");
        measure_bandwidth_ladder(hierarchy, LADDER_ACCESSES, LADDER_SEED, parallelism)
            .map_err(sim_err)?
    };
    let rungs: Vec<(String, BytesPerSec)> = ladder
        .iter()
        .map(|r| (r.level.clone(), BytesPerSec::from_gbps(r.gbps)))
        .collect();
    let roofline = CacheAwareRoofline::new(soc.ppeak(), rungs).map_err(model_err)?;
    let profile = {
        let _span = obs::span("profile_trace");
        traffic_profile(hierarchy).map_err(sim_err)?
    };
    let last = roofline.ceilings().len() - 1;
    let lo = roofline.knee(0).value() / 8.0;
    let hi = roofline.knee(last).value() * 8.0;
    let points = roofline
        .sweep(&profile, &log_space(lo, hi, SWEEP_POINTS))
        .map_err(model_err)?;
    Ok(CarmReport {
        ladder,
        roofline,
        points,
        profile,
    })
}

/// Replays a uniform-random read trace over twice the last level's
/// capacity and converts the resulting per-level served bytes into a
/// traffic profile. The footprint deliberately exceeds every cache so
/// all rungs (DRAM included) carry traffic and every ceiling is live.
fn traffic_profile(
    hierarchy: &HierarchyConfig,
) -> Result<TrafficProfile, gables_soc_sim::SimError> {
    use gables_soc_sim::trace::Access;
    let mut sim = HierarchySim::new(hierarchy.clone())?;
    let line = hierarchy.levels[0].geometry.line_bytes;
    let last_cap = hierarchy.levels[hierarchy.levels.len() - 1]
        .geometry
        .capacity_bytes;
    let lines = (2 * last_cap / line).max(2);
    let mut rng = SplitMix64::new(LADDER_SEED ^ 0x5EED);
    for _ in 0..PROFILE_ACCESSES {
        sim.access(Access::read(rng.range_u64(0, lines - 1) * line));
    }
    TrafficProfile::from_bytes(&sim.stats().bytes_per_level(hierarchy)).map_err(|e| {
        gables_soc_sim::SimError::Config {
            what: e.to_string(),
        }
    })
}

/// `n` log-spaced points from `lo` to `hi` inclusive.
fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let (l0, l1) = (lo.ln(), hi.ln());
    (0..n)
        .map(|k| (l0 + (l1 - l0) * k as f64 / (n - 1) as f64).exp())
        .collect()
}

/// The human-readable name of a binding constraint.
fn binding_name(report: &CarmReport, binding: CarmBinding) -> String {
    match binding {
        CarmBinding::Compute => "compute".to_string(),
        CarmBinding::Level(k) => report.ladder[k].level.clone(),
    }
}

/// One [`Series`] per ceiling (each `min(Ppeak, B_l * I)` curve) plus
/// the attainable curve for the measured traffic profile.
fn chart_series(report: &CarmReport) -> (Vec<Series>, Series) {
    let xs: Vec<f64> = report.points.iter().map(|p| p.intensity).collect();
    let ceilings = report
        .roofline
        .ceilings()
        .iter()
        .enumerate()
        .map(|(k, c)| Series {
            label: format!("{} {:.1} GB/s", c.name(), c.bandwidth().to_gbps()),
            points: xs
                .iter()
                .map(|&x| {
                    (
                        x,
                        report.roofline.ceiling_at(k, OpsPerByte::new(x)).to_gops(),
                    )
                })
                .collect(),
        })
        .collect();
    let attainable = Series {
        label: "attainable".to_string(),
        points: report
            .points
            .iter()
            .map(|p| (p.intensity, p.attainable_gops))
            .collect(),
    };
    (ceilings, attainable)
}

/// Renders the terminal report: ladder table, ASCII multi-ceiling
/// roofline, and the binding per sweep point.
pub fn render_text(report: &CarmReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cache-aware roofline: Ppeak = {:.2} Gops/s, {} measured ceilings",
        report.roofline.ppeak().to_gops(),
        report.ladder.len()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>10} {:>13} {:>9}",
        "level", "working-set", "GB/s", "knee(ops/B)", "traffic"
    );
    for (k, rung) in report.ladder.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<8} {:>12} B {:>10.2} {:>13.4} {:>8.1}%",
            rung.level,
            rung.working_set_bytes,
            rung.gbps,
            report.roofline.knee(k).value(),
            100.0 * report.profile.fraction(k)
        );
    }
    out.push('\n');
    let (mut series, attainable) = chart_series(report);
    series.push(attainable);
    out.push_str(&gables_plot::render_ascii(&series, 72, 18, true, true));
    let _ = writeln!(out, "{:<12} {:>12}  binding", "I(ops/B)", "Pattainable");
    for p in &report.points {
        let _ = writeln!(
            out,
            "{:<12.4} {:>12.4}  {}",
            p.intensity,
            p.attainable_gops,
            binding_name(report, p.binding)
        );
    }
    out
}

/// Renders the SVG multi-ceiling roofline with per-ceiling labels and
/// per-level knee markers.
pub fn render_svg(report: &CarmReport) -> String {
    let (ceilings, attainable) = chart_series(report);
    let knees: Vec<VerticalMarker> = report
        .roofline
        .ceilings()
        .iter()
        .enumerate()
        .map(|(k, c)| VerticalMarker {
            x: report.roofline.knee(k).value(),
            label: format!("{} knee", c.name()),
        })
        .collect();
    render_carm("Cache-aware roofline", &ceilings, &attainable, &knees)
}

/// The structured payload served by `/v1/carm` (everything but the
/// envelope): the ceiling ladder with knees and traffic fractions, the
/// sweep with the binding level per point, and the text rendering.
pub fn json_data(report: &CarmReport) -> Json {
    let ladder = Json::Array(
        report
            .ladder
            .iter()
            .enumerate()
            .map(|(k, rung)| {
                Json::Object(vec![
                    ("level".into(), Json::str(rung.level.clone())),
                    ("gbps".into(), Json::num(rung.gbps)),
                    (
                        "knee_ops_per_byte".into(),
                        Json::num(report.roofline.knee(k).value()),
                    ),
                    (
                        "working_set_bytes".into(),
                        Json::num(rung.working_set_bytes as f64),
                    ),
                    ("hit_ratio".into(), Json::num(rung.hit_ratio)),
                    (
                        "traffic_fraction".into(),
                        Json::num(report.profile.fraction(k)),
                    ),
                ])
            })
            .collect(),
    );
    let sweep = Json::Array(
        report
            .points
            .iter()
            .map(|p| {
                Json::Object(vec![
                    ("intensity".into(), Json::num(p.intensity)),
                    ("attainable_gops".into(), Json::num(p.attainable_gops)),
                    ("binding".into(), Json::str(binding_name(report, p.binding))),
                ])
            })
            .collect(),
    );
    Json::Object(vec![
        (
            "ppeak_gops".into(),
            Json::num(report.roofline.ppeak().to_gops()),
        ),
        ("ladder".into(), ladder),
        ("sweep".into(), sweep),
    ])
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::spec::FIGURE_6B_SPEC;

    /// A spec with a three-level hierarchy small enough for debug-mode
    /// tests (the DRAM ladder rung warms 4x the last capacity).
    pub(crate) fn carm_spec() -> String {
        format!(
            "{}\n\
             [cache.l1]\ncapacity_kib = 16\nassociativity = 4\nlatency_ns = 1\n\
             [cache.l2]\ncapacity_kib = 128\nassociativity = 8\nlatency_ns = 4\n\
             [cache.slc]\ncapacity_kib = 512\nassociativity = 16\nlatency_ns = 12\npolicy = mru\n\
             [cache]\ndram_latency_ns = 80\n",
            FIGURE_6B_SPEC
        )
    }

    #[test]
    fn report_measures_a_live_multi_ceiling_roofline() {
        let report = carm_report(&carm_spec(), Parallelism::Serial).unwrap();
        // Three cache levels plus DRAM, strictly decreasing bandwidths.
        assert_eq!(report.ladder.len(), 4);
        for pair in report.ladder.windows(2) {
            assert!(pair[0].gbps > pair[1].gbps, "{pair:?}");
        }
        // Every rung of the profile carries traffic (footprint exceeds
        // every cache), so every ceiling is live.
        for k in 0..report.profile.len() {
            assert!(report.profile.fraction(k) > 0.0, "rung {k} has no traffic");
        }
        assert_eq!(report.points.len(), SWEEP_POINTS);
    }

    #[test]
    fn missing_cache_sections_is_a_closed_coded_error() {
        let err = carm_report(FIGURE_6B_SPEC, Parallelism::Serial).unwrap_err();
        assert_eq!(err.code(), "invalid_cache_config");
        assert!(err.message.contains("[cache."), "{}", err.message);
    }

    #[test]
    fn text_report_renders_ladder_chart_and_bindings() {
        let report = carm_report(&carm_spec(), Parallelism::Serial).unwrap();
        let out = render_text(&report);
        assert!(out.contains("cache-aware roofline"));
        for level in ["l1", "l2", "slc", "dram"] {
            assert!(out.contains(level), "missing {level}:\n{out}");
        }
        assert!(out.contains("knee(ops/B)"));
        assert!(out.contains("binding"));
        // The sweep spans memory-bound through compute-bound.
        assert!(out.contains("compute"));
    }

    #[test]
    fn svg_labels_every_ceiling_and_knee() {
        let report = carm_report(&carm_spec(), Parallelism::Serial).unwrap();
        let svg = render_svg(&report);
        assert!(svg.starts_with("<svg"));
        for level in ["l1", "l2", "slc", "dram"] {
            assert!(
                svg.contains(&format!("{level} knee")),
                "missing {level} knee"
            );
        }
        assert!(svg.contains("GB/s"));
    }

    #[test]
    fn report_is_bit_identical_across_parallelism_policies() {
        let spec = carm_spec();
        let serial = carm_report(&spec, Parallelism::Serial).unwrap();
        let threaded = carm_report(&spec, Parallelism::Threads(2)).unwrap();
        assert_eq!(serial, threaded);
        assert_eq!(render_text(&serial), render_text(&threaded));
        assert_eq!(
            json_data(&serial).to_string(),
            json_data(&threaded).to_string()
        );
    }

    #[test]
    fn json_payload_carries_ladder_and_bindings() {
        let report = carm_report(&carm_spec(), Parallelism::Serial).unwrap();
        let json = json_data(&report).to_string();
        assert!(json.contains("\"ppeak_gops\""));
        assert!(json.contains("\"knee_ops_per_byte\""));
        assert!(json.contains("\"traffic_fraction\""));
        assert!(json.contains("\"binding\""));
        assert!(json.contains("\"dram\""));
    }
}
