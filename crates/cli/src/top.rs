//! The `gables top` subcommand: a live ASCII dashboard over a running
//! `gables serve` instance (single process or `--replicas N` fleet).
//!
//! Each tick polls `GET /v1/slo`, `GET /v1/metrics`, and
//! `GET /v1/healthz?format=json`, then renders one frame: per-route
//! windowed quantiles with a p99 trend sparkline (history accumulates
//! across polls), the error-budget burn gauge of every configured
//! `--slo`, worker-pool saturation, and the cache hit ratio. Frames are
//! plain text ([`gables_plot::spark`]) with an ANSI clear between
//! ticks, so `--frames N` can capture a deterministic final frame for
//! tests and docs instead of looping forever.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gables_model::json::Json;
use gables_plot::{gauge, sparkline};
use gables_serve::Request;

use crate::spec::SpecError;

/// How many polls of p99 history each route's sparkline keeps.
const HISTORY_LEN: usize = 64;

/// Sparkline width in the rendered frame.
const SPARK_WIDTH: usize = 24;

/// Burn-rate gauge width in the rendered frame.
const GAUGE_WIDTH: usize = 10;

/// Parsed `gables top` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct TopOptions {
    /// Server address to poll, default `127.0.0.1:7878`.
    pub addr: String,
    /// Seconds between polls, default 1.
    pub interval: f64,
    /// Render this many frames then return the last one; `None` loops
    /// until the server goes away or the process is killed.
    pub frames: Option<usize>,
}

/// Parses `[addr] [--interval secs] [--frames n]`.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown flags or malformed values.
pub fn parse_top_args(args: &[String]) -> Result<TopOptions, SpecError> {
    let mut opts = TopOptions {
        addr: "127.0.0.1:7878".to_string(),
        interval: 1.0,
        frames: None,
    };
    let mut it = args.iter();
    let mut addr_seen = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => {
                let raw = it
                    .next()
                    .ok_or_else(|| SpecError::general("--interval needs seconds"))?;
                let v: f64 = raw.parse().map_err(|_| {
                    SpecError::general(format!("--interval: {raw:?} is not a number"))
                })?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(SpecError::general("--interval must be a positive number"));
                }
                opts.interval = v;
            }
            "--frames" => {
                let raw = it
                    .next()
                    .ok_or_else(|| SpecError::general("--frames needs a count"))?;
                let v: usize = raw.parse().map_err(|_| {
                    SpecError::general(format!("--frames: {raw:?} is not a positive integer"))
                })?;
                if v == 0 {
                    return Err(SpecError::general("--frames must be at least 1"));
                }
                opts.frames = Some(v);
            }
            other if other.starts_with('-') => {
                return Err(SpecError::general(format!(
                    "unknown top flag {other:?} (only --interval <secs>, --frames <n>)"
                )))
            }
            other => {
                if addr_seen {
                    return Err(SpecError::general(format!(
                        "unexpected extra argument {other:?}"
                    )));
                }
                opts.addr = other.to_string();
                addr_seen = true;
            }
        }
    }
    Ok(opts)
}

/// `gables top [addr] [--interval secs] [--frames n]`: poll and render
/// until killed (or for `--frames` ticks, returning the final frame).
///
/// # Errors
///
/// Returns [`SpecError`] for bad arguments or when the server becomes
/// unreachable or answers with a non-200.
pub fn top_command(args: &[String]) -> Result<String, SpecError> {
    let opts = parse_top_args(args)?;
    let mut history: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut rendered = 0usize;
    loop {
        let slo = fetch(&opts.addr, "/v1/slo", None)?;
        let metrics = fetch(&opts.addr, "/v1/metrics", None)?;
        let health = fetch(&opts.addr, "/v1/healthz", Some("format=json"))?;
        update_history(&mut history, &slo);
        let frame = render_frame(&opts.addr, &slo, &metrics, &health, &history);
        rendered += 1;
        if let Some(n) = opts.frames {
            if rendered >= n {
                return Ok(frame);
            }
        }
        // The interactive path: clear, home, draw. The loop only ends
        // via --frames or a poll error, so nothing reaches the normal
        // command-output channel here.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(std::time::Duration::from_secs_f64(opts.interval));
    }
}

/// One enveloped `GET` against the server; returns the `data` payload.
fn fetch(addr: &str, path: &str, query: Option<&str>) -> Result<Json, SpecError> {
    let req = Request {
        method: "GET".into(),
        path: path.into(),
        query: query.map(String::from),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let resp = crate::serve::forward(addr, &req, path)
        .map_err(|e| SpecError::general(format!("{addr}{path}: {e}")))?;
    if resp.status != 200 {
        return Err(SpecError::general(format!(
            "{addr}{path}: HTTP {}",
            resp.status
        )));
    }
    let body =
        String::from_utf8(resp.body).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
    let doc = Json::parse(&body).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
    doc.get("data")
        .cloned()
        .ok_or_else(|| SpecError::general(format!("{path}: envelope has no data")))
}

/// Appends each route's current 1-minute p99 to its trend history
/// (bounded at [`HISTORY_LEN`] samples).
fn update_history(history: &mut BTreeMap<String, Vec<f64>>, slo: &Json) {
    let Some(quantiles) = slo.get("quantiles").and_then(Json::as_object) else {
        return;
    };
    for (route, doc) in quantiles {
        let p99 = window_stat(doc, 0, "p99_us").unwrap_or(0.0);
        let series = history.entry(route.clone()).or_default();
        series.push(p99);
        if series.len() > HISTORY_LEN {
            series.remove(0);
        }
    }
}

/// Reads `windows[idx].<key>` (or `windows[idx].latency.<key>` for
/// quantile fields) from one route's quantile document.
fn window_stat(route_doc: &Json, idx: usize, key: &str) -> Option<f64> {
    let window = route_doc.get("windows")?.as_array()?.get(idx)?;
    match window.get(key) {
        Some(v) => v.as_f64(),
        None => window.get("latency")?.get(key)?.as_f64(),
    }
}

/// Formats microseconds tersely: `87us`, `1.43ms`, `2.1s`.
fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.0}us")
    }
}

/// Renders one dashboard frame from the three polled documents plus
/// the accumulated p99 history. Pure text — testable without sockets.
fn render_frame(
    addr: &str,
    slo: &Json,
    metrics: &Json,
    health: &Json,
    history: &BTreeMap<String, Vec<f64>>,
) -> String {
    let num = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let shards = num(slo, "shards").max(1.0) as usize;
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "gables top — http://{addr} — {shards} shard{} — uptime {:.1}s",
        if shards == 1 { "" } else { "s" },
        num(health, "uptime_seconds"),
    );
    let saturation = num(health, "worker_saturation");
    let _ = writeln!(
        out,
        "requests  {:>8} handled   {:>6} in flight   workers {:>3}  {} {:>5.1}%",
        num(metrics, "handled"),
        num(metrics, "in_flight"),
        num(health, "workers"),
        gauge(saturation, GAUGE_WIDTH),
        saturation * 100.0,
    );
    let hit_rate = num(metrics, "cache_hit_rate");
    let _ = writeln!(
        out,
        "cache     {:>8} hits      {:>6} misses      hit rate     {} {:>5.1}%",
        num(metrics, "cache_hits"),
        num(metrics, "cache_misses"),
        gauge(hit_rate, GAUGE_WIDTH),
        hit_rate * 100.0,
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>9} {:>9} {:>6}  p99 trend",
        "route", "1m p50", "1m p99", "cum p99", "err%"
    );
    if let Some(quantiles) = slo.get("quantiles").and_then(Json::as_object) {
        for (route, doc) in quantiles {
            let cum_p99 = doc
                .get("cumulative")
                .and_then(|c| c.get("p99_us"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let err = window_stat(doc, 0, "error_rate").unwrap_or(0.0) * 100.0;
            let trend = history.get(route).map(Vec::as_slice).unwrap_or(&[]);
            let _ = writeln!(
                out,
                "{:<22} {:>9} {:>9} {:>9} {:>5.1}%  {}",
                route,
                fmt_us(window_stat(doc, 0, "p50_us").unwrap_or(0.0)),
                fmt_us(window_stat(doc, 0, "p99_us").unwrap_or(0.0)),
                fmt_us(cum_p99),
                err,
                sparkline(trend, SPARK_WIDTH),
            );
        }
    }
    if let Some(slos) = slo.get("slos").and_then(Json::as_array) {
        if !slos.is_empty() {
            out.push('\n');
            let _ = writeln!(
                out,
                "{:<22} {:<12} burn 1m{:>9} 5m{:>9} 1h       status",
                "SLO route", "objective", "", ""
            );
            for entry in slos {
                let route = entry.get("route").and_then(Json::as_str).unwrap_or("?");
                let objective = entry.get("objective").and_then(Json::as_str).unwrap_or("?");
                let windows = entry.get("windows").and_then(Json::as_array).unwrap_or(&[]);
                let burn = |i: usize| {
                    windows
                        .get(i)
                        .and_then(|w| w.get("burn_rate"))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                };
                let ok = windows
                    .iter()
                    .all(|w| w.get("ok").and_then(Json::as_bool).unwrap_or(true));
                let _ = writeln!(
                    out,
                    "{:<22} {:<12} {} {:>7.2} {:>8.2} {:>8.2}   {}",
                    route,
                    objective,
                    gauge(burn(0), GAUGE_WIDTH),
                    burn(0),
                    burn(1),
                    burn(2),
                    if ok { "ok" } else { "BURNING" },
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_top_args_defaults_and_overrides() {
        let opts = parse_top_args(&[]).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7878");
        assert_eq!(opts.interval, 1.0);
        assert_eq!(opts.frames, None);
        let opts = parse_top_args(&[
            "10.0.0.1:80".into(),
            "--interval".into(),
            "0.25".into(),
            "--frames".into(),
            "3".into(),
        ])
        .unwrap();
        assert_eq!(opts.addr, "10.0.0.1:80");
        assert_eq!(opts.interval, 0.25);
        assert_eq!(opts.frames, Some(3));
        assert!(parse_top_args(&["--interval".into()]).is_err());
        assert!(parse_top_args(&["--interval".into(), "0".into()]).is_err());
        assert!(parse_top_args(&["--frames".into(), "0".into()]).is_err());
        assert!(parse_top_args(&["--nope".into()]).is_err());
        assert!(parse_top_args(&["a:1".into(), "b:2".into()]).is_err());
    }

    /// Builds realistic poll documents from a live registry, so the
    /// frame renderer is tested against the server's actual shapes.
    fn sample_docs() -> (Json, Json, Json) {
        use gables_serve::slo::{render_slo_json, SloRegistry};
        use gables_serve::SloSpec;
        let registry = SloRegistry::new();
        for i in 0..40u64 {
            let status = if i % 20 == 0 { 500 } else { 200 };
            registry.record("/v1/eval", status, 200 + 10 * i);
        }
        let specs = vec![SloSpec::parse("route=/v1/eval p99<1us err<0.1%").unwrap()];
        let slo = Json::parse(&render_slo_json(&registry.snapshot(), &specs, 2)).unwrap();
        let metrics = Json::parse(
            "{\"handled\":40,\"in_flight\":1,\"cache_hits\":30,\"cache_misses\":10,\
             \"cache_hit_rate\":0.75}",
        )
        .unwrap();
        let health =
            Json::parse("{\"uptime_seconds\":12.5,\"workers\":4,\"worker_saturation\":0.25}")
                .unwrap();
        (slo, metrics, health)
    }

    #[test]
    fn frame_renders_routes_gauges_and_burning_slos() {
        let (slo, metrics, health) = sample_docs();
        let mut history = BTreeMap::new();
        for _ in 0..3 {
            update_history(&mut history, &slo);
        }
        assert_eq!(history.get("/v1/eval").map(Vec::len), Some(3));
        let frame = render_frame("127.0.0.1:7878", &slo, &metrics, &health, &history);
        assert!(
            frame.contains("gables top — http://127.0.0.1:7878 — 2 shards"),
            "{frame}"
        );
        assert!(frame.contains("/v1/eval"), "{frame}");
        // Every request exceeds the 1us threshold, so the SLO burns.
        assert!(frame.contains("BURNING"), "{frame}");
        assert!(frame.contains("]!"), "{frame}");
        // Saturation and cache gauges render with their percentages.
        assert!(frame.contains(" 25.0%"), "{frame}");
        assert!(frame.contains(" 75.0%"), "{frame}");
        // The trend sparkline has glyphs for the three recorded polls.
        assert!(frame.contains('▁'), "{frame}");
    }

    #[test]
    fn history_is_bounded() {
        let (slo, _, _) = sample_docs();
        let mut history = BTreeMap::new();
        for _ in 0..(HISTORY_LEN + 10) {
            update_history(&mut history, &slo);
        }
        assert_eq!(history.get("/v1/eval").map(Vec::len), Some(HISTORY_LEN));
    }

    #[test]
    fn fmt_us_picks_the_tersest_unit() {
        assert_eq!(fmt_us(87.0), "87us");
        assert_eq!(fmt_us(1430.0), "1.43ms");
        assert_eq!(fmt_us(2_100_000.0), "2.10s");
    }
}
