//! # gables-cli
//!
//! The command-line Gables explorer — the repository's analog of the
//! paper's open-source app and interactive visualization tool. Reads an
//! INI-style spec file describing a SoC, a workload, and optional
//! extensions; evaluates, sweeps, or plots it.
//!
//! ```text
//! gables example                   # print a starter spec (Figure 6b)
//! gables eval  spec.gables         # evaluate and explain the bottleneck
//! gables sweep spec.gables f 0 1 8 # sweep the accelerator fraction
//! gables plot  spec.gables out.svg # render the multi-roofline plot
//! gables trace spec.gables out     # simulate with telemetry; write
//!                                  # out.trace.json/.timeline.csv/.report.txt
//! ```
//!
//! The command layer is a library so it can be tested without spawning
//! processes; `src/main.rs` is a thin argv wrapper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod carm;
pub mod serve;
pub mod spec;
pub mod top;

use std::fmt::Write as _;

use gables_model::analysis::{bpeak_sweep_with, sufficient_bpeak};
use gables_model::decfmt;
use gables_model::par::{self, Parallelism};
use gables_model::viz::gables_plot_data;
use gables_model::{evaluate, Workload};
use gables_plot::render_gables_plot;
use spec::{Spec, SpecError};

/// Runs one CLI command against spec text; returns the text to print.
///
/// `args` excludes the program name. See the crate docs for the grammar.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown commands, malformed arguments, parse
/// failures, and model errors.
pub fn run(
    args: &[String],
    read_file: &dyn Fn(&str) -> std::io::Result<String>,
) -> Result<String, SpecError> {
    let args = split_log_flags(args)?;
    let (args, parallelism) = split_threads_flag(&args)?;
    let (args, profile_out) = split_profile_flag(&args)?;
    match profile_out {
        None => dispatch(&args, parallelism, read_file),
        Some(path) => run_profiled(&args, parallelism, read_file, &path),
    }
}

/// Dispatches one already-flag-stripped command line.
fn dispatch(
    args: &[String],
    parallelism: Parallelism,
    read_file: &dyn Fn(&str) -> std::io::Result<String>,
) -> Result<String, SpecError> {
    match args.first().map(String::as_str) {
        Some("example") => Ok(spec::FIGURE_6B_SPEC.to_string()),
        Some("eval") => {
            let path = arg(args, 1, "spec file")?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            eval_command(&text)
        }
        Some("sweep") => {
            let path = arg(args, 1, "spec file")?;
            let param = arg(args, 2, "parameter (f | bpeak | intensity)")?;
            let from: f64 = parse_num(&arg(args, 3, "from")?)?;
            let to: f64 = parse_num(&arg(args, 4, "to")?)?;
            let steps: usize = arg(args, 5, "steps")?
                .parse()
                .map_err(|_| SpecError::general("steps must be an integer"))?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            sweep_command_with(&text, &param, from, to, steps, parallelism)
        }
        Some("plot") => {
            let path = arg(args, 1, "spec file")?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            plot_command(&text)
        }
        Some("frontier") => {
            let path = arg(args, 1, "spec file")?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            frontier_command_with(&text, parallelism)
        }
        Some("ascii") => {
            let path = arg(args, 1, "spec file")?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            ascii_command(&text)
        }
        Some("whatif") => {
            let path = arg(args, 1, "spec file")?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            let edits = args[2..].join(" ");
            whatif_command(&text, &edits)
        }
        Some("trace") => {
            let path = arg(args, 1, "spec file")?;
            let prefix = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "gables-trace".to_string());
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            let artifacts = trace_command(&text)?;
            let mut out = artifacts.report.clone();
            for (suffix, contents) in [
                (".trace.json", &artifacts.chrome_json),
                (".timeline.csv", &artifacts.csv),
                (".report.txt", &artifacts.report),
            ] {
                let file = format!("{prefix}{suffix}");
                std::fs::write(&file, contents)
                    .map_err(|e| SpecError::general(format!("{file}: {e}")))?;
                let _ = writeln!(out, "wrote {file}");
            }
            Ok(out)
        }
        Some("carm") => {
            let (path, svg_out) = carm_args(&args[1..])?;
            let text = read_file(&path).map_err(|e| SpecError::general(format!("{path}: {e}")))?;
            let report = carm::carm_report(&text, parallelism)?;
            let mut out = carm::render_text(&report);
            if let Some(svg_path) = svg_out {
                std::fs::write(&svg_path, carm::render_svg(&report))
                    .map_err(|e| SpecError::general(format!("{svg_path}: {e}")))?;
                let _ = writeln!(out, "wrote {svg_path}");
            }
            Ok(out)
        }
        Some("serve") => serve::serve_command(&args[1..]),
        Some("top") => top::top_command(&args[1..]),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(SpecError::general(format!(
            "unknown command {other:?} (valid commands: {})\n{}",
            COMMANDS.join(", "),
            usage()
        ))),
    }
}

/// Every valid subcommand, in the order `usage()` lists them.
pub const COMMANDS: &[&str] = &[
    "example", "eval", "sweep", "plot", "ascii", "carm", "frontier", "whatif", "trace", "serve",
    "top", "help",
];

/// Parses `carm` operands: `carm <spec> [out.svg]`, with the spec path
/// also accepted as `--spec <path>` / `--spec=<path>` anywhere.
fn carm_args(args: &[String]) -> Result<(String, Option<String>), SpecError> {
    let mut spec_path = None;
    let mut operands = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--spec" {
            let value = it
                .next()
                .ok_or_else(|| SpecError::general("--spec requires a spec file path"))?;
            spec_path = Some(value.clone());
        } else if let Some(value) = a.strip_prefix("--spec=") {
            spec_path = Some(value.to_string());
        } else {
            operands.push(a.clone());
        }
    }
    let mut operands = operands.into_iter();
    let path = match spec_path {
        Some(p) => p,
        None => operands.next().ok_or_else(|| {
            SpecError::general(format!("missing argument: spec file\n{}", usage()))
        })?,
    };
    Ok((path, operands.next()))
}

fn usage() -> String {
    "usage:\n  gables example                    print a starter spec (Figure 6b)\n  gables eval  <spec>               evaluate Pattainable and the bottleneck\n  gables sweep <spec> f|bpeak|intensity <from> <to> <steps>\n  gables plot  <spec>               print the multi-roofline SVG to stdout\n  gables ascii <spec>               draw the multi-roofline plot in the terminal\n  gables carm  <spec> [out.svg]     cache-aware roofline: measure per-level\n                                    ceilings with the hierarchy simulator, print\n                                    the ladder + ASCII plot (optionally write\n                                    the SVG); spec needs [cache.<level>] sections\n  gables frontier <spec>            Pareto frontier of an [explore] grid\n  gables whatif <spec> <edits>      apply `; `-separated edits, e.g.\n                                    'move_work 0 1 0.75; set_bpeak 30; set_intensity 1 8'\n  gables trace <spec> [prefix]      simulate with telemetry; print the bottleneck\n                                    report and write <prefix>.trace.json (Chrome\n                                    trace), <prefix>.timeline.csv, <prefix>.report.txt\n  gables serve [addr] [--workers N] [--replicas N] [--slo DEF]...\n                                    serve the /v1 JSON API (eval, batch, sweep,\n                                    whatif, simulate, metrics, slo) over HTTP\n                                    (default 127.0.0.1:7878); --replicas N shards\n                                    across N consistent-hashed child processes;\n                                    --slo 'route=/v1/eval p99<2ms err<0.1%'\n                                    (repeatable) defines objectives for /v1/slo\n  gables top   [addr] [--interval S] [--frames N]\n                                    live dashboard over a running server: windowed\n                                    quantile sparklines, SLO burn-rate gauges,\n                                    worker saturation, cache hit ratio\n  gables help\n\noptions (any command):\n  --threads auto|serial|N           parallelism for sweep/frontier/trace grids;\n                                    results are bit-identical across policies\n                                    (GABLES_THREADS=N sets the 'auto' default)\n  --log error|warn|info|debug|trace|off\n                                    stderr log level (overrides GABLES_LOG;\n                                    default warn)\n  --log-format text|json            log line format (default text)\n  --profile <out>                   run under the sampling profiler; write a\n                                    collapsed-stack profile (flamegraph.pl\n                                    compatible; JSON when <out> ends in .json)\n                                    and print allocation + self-time summaries\n".to_string()
}

fn arg(args: &[String], idx: usize, what: &str) -> Result<String, SpecError> {
    args.get(idx)
        .cloned()
        .ok_or_else(|| SpecError::general(format!("missing argument: {what}\n{}", usage())))
}

fn parse_num(s: &str) -> Result<f64, SpecError> {
    s.parse()
        .map_err(|_| SpecError::general(format!("not a number: {s:?}")))
}

/// Strips a `--threads <policy>` (or `--threads=<policy>`) flag from
/// anywhere in the argument list, so every subcommand accepts it
/// uniformly. Grid-shaped commands (`sweep`, `frontier`) honor it; the
/// rest run a single evaluation and ignore it.
fn split_threads_flag(args: &[String]) -> Result<(Vec<String>, Parallelism), SpecError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut parallelism = Parallelism::Auto;
    let parse = |value: &str| -> Result<Parallelism, SpecError> {
        Parallelism::from_arg(value).ok_or_else(|| {
            SpecError::general(format!(
                "invalid --threads value {value:?} (use auto, serial, or a thread count >= 1)"
            ))
        })
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let value = it.next().ok_or_else(|| {
                SpecError::general("--threads requires a value (auto, serial, or a thread count)")
            })?;
            parallelism = parse(value)?;
        } else if let Some(value) = a.strip_prefix("--threads=") {
            parallelism = parse(value)?;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, parallelism))
}

/// Strips `--log <level>` / `--log=<level>` and `--log-format <fmt>` /
/// `--log-format=<fmt>` from anywhere in the argument list and applies
/// them via [`gables_model::obs`], so every subcommand accepts the same
/// logging controls. `--log` takes `error`, `warn`, `info`, `debug`,
/// `trace`, or `off`, and overrides the `GABLES_LOG` environment
/// variable; `--log-format` takes `text` (default) or `json`.
fn split_log_flags(args: &[String]) -> Result<Vec<String>, SpecError> {
    use gables_model::obs;
    let mut rest = Vec::with_capacity(args.len());
    let parse_level = |value: &str| -> Result<Option<obs::Level>, SpecError> {
        obs::Level::parse(value)
            .map_err(|e| SpecError::general(format!("invalid --log value: {e}")))
    };
    let parse_format = |value: &str| -> Result<obs::LogFormat, SpecError> {
        obs::LogFormat::parse(value)
            .map_err(|e| SpecError::general(format!("invalid --log-format value: {e}")))
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--log" {
            let value = it.next().ok_or_else(|| {
                SpecError::general("--log requires a value (error, warn, info, debug, trace, off)")
            })?;
            obs::set_level(parse_level(value)?);
        } else if let Some(value) = a.strip_prefix("--log=") {
            obs::set_level(parse_level(value)?);
        } else if a == "--log-format" {
            let value = it.next().ok_or_else(|| {
                SpecError::general("--log-format requires a value (json or text)")
            })?;
            obs::set_format(parse_format(value)?);
        } else if let Some(value) = a.strip_prefix("--log-format=") {
            obs::set_format(parse_format(value)?);
        } else {
            rest.push(a.clone());
        }
    }
    Ok(rest)
}

/// Strips a `--profile <out>` (or `--profile=<out>`) flag from anywhere
/// in the argument list. When present, the command runs under the
/// [`gables_model::prof`] sampling profiler inside a
/// `main;dispatch;<command>` span scaffold, and the collapsed-stack
/// profile (or JSON, when `<out>` ends in `.json`) is written to `<out>`.
fn split_profile_flag(args: &[String]) -> Result<(Vec<String>, Option<String>), SpecError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--profile" {
            let value = it.next().ok_or_else(|| {
                SpecError::general("--profile requires an output path (.folded or .json)")
            })?;
            out = Some(value.clone());
        } else if let Some(value) = a.strip_prefix("--profile=") {
            out = Some(value.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, out))
}

/// Runs a command under the sampling profiler. The command executes
/// inside a `main` → `dispatch` → `<command>` span scaffold (matching
/// the server's `server.request` → `dispatch <route>` → handler shape),
/// so library spans such as the parallel map's `worker` nest beneath it
/// and the folded output reads `main;dispatch;sweep;worker`. The
/// profile is written to `out_path` even when the command fails; the
/// sample/allocation summary and top self-time frames are appended to
/// successful output.
fn run_profiled(
    args: &[String],
    parallelism: Parallelism,
    read_file: &dyn Fn(&str) -> std::io::Result<String>,
    out_path: &str,
) -> Result<String, SpecError> {
    use gables_model::{obs, prof};
    let session = prof::start(prof::SampleConfig::default())
        .map_err(|e| SpecError::general(format!("--profile: {e}")))?;
    let collector = obs::SpanCollector::new(8192);
    let command = args.first().map_or("help", String::as_str).to_string();
    let result = {
        let _root = obs::attach_root(&collector, obs::hash64("gables-cli"), "main");
        let _dispatch = obs::span("dispatch");
        let _cmd = obs::span(&command);
        dispatch(args, parallelism, read_file)
    };
    let profile = session.stop();
    let contents = if out_path.ends_with(".json") {
        profile.to_json().to_string()
    } else {
        profile.to_folded()
    };
    std::fs::write(out_path, &contents)
        .map_err(|e| SpecError::general(format!("{out_path}: {e}")))?;
    let mut out = result?;
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "profile: {} samples across {} stacks ({} dropped), {} allocs / {} bytes",
        profile.samples_total,
        profile.samples.len(),
        profile.samples_dropped,
        profile.alloc.allocs,
        profile.alloc.bytes,
    );
    out.push_str(&gables_plot::render_self_time_table(&profile.samples, 5));
    let _ = writeln!(out, "wrote {out_path}");
    Ok(out)
}

/// `gables eval`: evaluate the spec, with the SRAM extension if present.
pub fn eval_command(text: &str) -> Result<String, SpecError> {
    let spec = Spec::parse(text)?;
    let soc = spec.soc()?;
    let workload = spec.workload()?;
    // Roomy enough for the SoC header, per-IP lines, the evaluation
    // breakdown, and the Bpeak line without growth reallocations.
    let mut out = String::with_capacity(512 + 96 * soc.ip_count());
    let _ = writeln!(out, "{soc}");
    let eval = evaluate(&soc, &workload)?;
    let _ = write!(out, "{eval}");
    let needed = sufficient_bpeak(&soc, &workload)?;
    out.push_str("sufficient Bpeak for this usecase: ");
    decfmt::push_fixed(&mut out, needed.to_gbps(), 2);
    out.push_str(" GB/s (installed ");
    decfmt::push_fixed(&mut out, soc.bpeak().to_gbps(), 2);
    out.push_str(")\n");
    if let Some(sram) = spec.sram()? {
        let with = sram.evaluate(&soc, &workload)?;
        let _ = writeln!(
            out,
            "with memory-side SRAM: Pattainable = {:.4} Gops/s (bottleneck: {})",
            with.attainable().to_gops(),
            with.bottleneck()
        );
    }
    Ok(out)
}

/// `gables sweep`: sweep `f` (two-IP only), `bpeak`, or `intensity`,
/// with the default [`Parallelism::Auto`] policy.
pub fn sweep_command(
    text: &str,
    param: &str,
    from: f64,
    to: f64,
    steps: usize,
) -> Result<String, SpecError> {
    sweep_command_with(text, param, from, to, steps, Parallelism::Auto)
}

/// [`sweep_command`] with an explicit parallelism policy (the CLI's
/// `--threads` flag). The grid points are evaluated via
/// [`gables_model::par::try_map`], so the printed table is byte-identical
/// across policies.
pub fn sweep_command_with(
    text: &str,
    param: &str,
    from: f64,
    to: f64,
    steps: usize,
    parallelism: Parallelism,
) -> Result<String, SpecError> {
    let spec = Spec::parse(text)?;
    let soc = spec.soc()?;
    let workload = spec.workload()?;
    // One header plus ~32 bytes per table row.
    let mut out = String::with_capacity(64 + 36 * (steps + 1));
    match param {
        "f" => {
            if soc.ip_count() != 2 {
                return Err(SpecError::general("sweep f requires exactly two IPs"));
            }
            if steps == 0 || !(0.0..=1.0).contains(&from) || !(from..=1.0).contains(&to) {
                return Err(SpecError::general(
                    "sweep f requires 0 <= from <= to <= 1 and steps >= 1",
                ));
            }
            let i0 = workload.assignment(0)?.intensity().value();
            let i1 = workload.assignment(1)?.intensity().value();
            // The table needs only the attainment and the bottleneck, so
            // the workers return those (a few words per point) instead of
            // copying whole `Evaluation` breakdowns into the result vec.
            let points = par::try_map(parallelism, steps + 1, |k| {
                let f = from + (to - from) * k as f64 / steps as f64;
                let w = Workload::two_ip(f, i0, i1)?;
                let eval = evaluate(&soc, &w)?;
                Ok::<_, SpecError>((f, eval.attainable().to_gops(), eval.bottleneck()))
            })?;
            out.push_str("f        Pattainable  bottleneck\n");
            for (f, gops, bottleneck) in points {
                decfmt::push_fixed_left(&mut out, f, 4, 8);
                out.push(' ');
                decfmt::push_fixed_right(&mut out, gops, 4, 10);
                out.push_str("  ");
                let _ = writeln!(out, "{bottleneck}");
            }
        }
        "bpeak" => {
            let points = bpeak_sweep_with(&soc, &workload, from, to, steps, parallelism)?;
            out.push_str("Bpeak(GB/s)  Pattainable  bottleneck\n");
            for p in points {
                decfmt::push_fixed_left(&mut out, p.bpeak_gbps, 3, 12);
                out.push(' ');
                decfmt::push_fixed_right(&mut out, p.evaluation.attainable().to_gops(), 4, 10);
                out.push_str("  ");
                let _ = writeln!(out, "{}", p.evaluation.bottleneck());
            }
        }
        "intensity" => {
            // ERT-style: set every active IP's operational intensity to
            // the step value and watch attainment climb the roofline.
            if steps == 0 || from <= 0.0 || to < from {
                return Err(SpecError::general(
                    "sweep intensity requires 0 < from <= to and steps >= 1",
                ));
            }
            let points = par::try_map(parallelism, steps + 1, |k| {
                let i = from + (to - from) * k as f64 / steps as f64;
                let mut w = workload.clone();
                for idx in 0..w.assignments().len() {
                    if w.assignment(idx)?.is_active() {
                        w = w.with_intensity(idx, i)?;
                    }
                }
                let eval = evaluate(&soc, &w)?;
                Ok::<_, SpecError>((i, eval.attainable().to_gops(), eval.bottleneck()))
            })?;
            out.push_str("I(ops/B)  Pattainable  bottleneck\n");
            for (i, gops, bottleneck) in points {
                decfmt::push_fixed_left(&mut out, i, 4, 9);
                out.push(' ');
                decfmt::push_fixed_right(&mut out, gops, 4, 10);
                out.push_str("  ");
                let _ = writeln!(out, "{bottleneck}");
            }
        }
        other => {
            return Err(SpecError::general(format!(
                "unknown sweep parameter {other:?} (use f, bpeak, or intensity)"
            )))
        }
    }
    Ok(out)
}

/// `gables frontier`: explore an `[explore]` grid and print the Pareto
/// frontier for the spec's workload, with the default
/// [`Parallelism::Auto`] policy.
pub fn frontier_command(text: &str) -> Result<String, SpecError> {
    frontier_command_with(text, Parallelism::Auto)
}

/// [`frontier_command`] with an explicit parallelism policy (the CLI's
/// `--threads` flag).
pub fn frontier_command_with(text: &str, parallelism: Parallelism) -> Result<String, SpecError> {
    use gables_model::explore::{explore_with, pareto_frontier};
    let spec = Spec::parse(text)?;
    let Some((grid, cost)) = spec.explore_grid()? else {
        return Err(SpecError::general("spec has no [explore] section"));
    };
    let workload = spec.workload()?;
    let points = explore_with(&grid, &cost, &workload, parallelism)?;
    let frontier = pareto_frontier(&points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} candidates, {} on the Pareto frontier:",
        points.len(),
        frontier.len()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>8} {:>12} {:>12} {:>18}",
        "cost", "Pattainable", "A1", "B1(GB/s)", "Bpeak(GB/s)", "bottleneck"
    );
    for p in &frontier {
        let acc = p.soc.ip(1)?;
        let _ = writeln!(
            out,
            "{:<8.1} {:>9.2} G {:>8.1} {:>12.1} {:>12.1} {:>18}",
            p.cost,
            p.perf_gops,
            acc.acceleration().value(),
            acc.bandwidth().to_gbps(),
            p.soc.bpeak().to_gbps(),
            p.bottleneck.to_string()
        );
    }
    Ok(out)
}

/// `gables whatif`: apply a `; `-separated edit chain and narrate the
/// performance/bottleneck deltas.
///
/// Edit grammar (whitespace-separated operands):
///
/// * `set_bpeak <gbps>`
/// * `set_ppeak <gops>`
/// * `scale_bw <ip> <factor>`
/// * `set_intensity <ip> <ops_per_byte>`
/// * `move_work <from_ip> <to_ip> <fraction>`
pub fn whatif_command(text: &str, edits: &str) -> Result<String, SpecError> {
    use gables_model::whatif::{apply, Edit};
    let spec = Spec::parse(text)?;
    let soc = spec.soc()?;
    let workload = spec.workload()?;

    // A JSON-envelope spec may carry its own edit chain; explicit CLI
    // edits win when both are present.
    let edits = if edits.trim().is_empty() {
        spec.edits().unwrap_or(edits)
    } else {
        edits
    };

    let mut parsed = Vec::new();
    for raw in edits.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = raw.split_whitespace().collect();
        let num = |i: usize| -> Result<f64, SpecError> {
            tokens
                .get(i)
                .ok_or_else(|| SpecError::general(format!("edit {raw:?}: missing operand {i}")))?
                .parse()
                .map_err(|_| {
                    SpecError::general(format!("edit {raw:?}: operand {i} is not a number"))
                })
        };
        let ip = |i: usize| -> Result<usize, SpecError> { Ok(num(i)? as usize) };
        let edit = match tokens[0] {
            "set_bpeak" => Edit::SetBpeakGbps(num(1)?),
            "set_ppeak" => Edit::SetPpeakGops(num(1)?),
            "scale_bw" => Edit::ScaleIpBandwidth {
                ip: ip(1)?,
                factor: num(2)?,
            },
            "set_intensity" => Edit::SetIntensity {
                ip: ip(1)?,
                ops_per_byte: num(2)?,
            },
            "move_work" => Edit::MoveWork {
                from: ip(1)?,
                to: ip(2)?,
                fraction: num(3)?,
            },
            other => return Err(SpecError::general(format!("unknown edit {other:?}"))),
        };
        parsed.push(edit);
    }
    if parsed.is_empty() {
        return Err(SpecError::general(
            "no edits given (e.g. 'set_bpeak 30; set_intensity 1 8')",
        ));
    }
    let report = apply(&soc, &workload, &parsed)?;
    Ok(report.to_string())
}

/// The three artifacts produced by `gables trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON (load in `chrome://tracing` or Perfetto).
    pub chrome_json: String,
    /// Per-epoch CSV timeline.
    pub csv: String,
    /// Human-readable bottleneck report with an ASCII timeline.
    pub report: String,
}

/// `gables trace`: build a cacheless simulator from the spec's Gables
/// parameters, run the workload as one concurrent read-modify-write job
/// per active IP with a telemetry recorder attached, and return the
/// Chrome-trace JSON, CSV timeline, and text report.
///
/// # Errors
///
/// Returns [`SpecError`] for parse failures, an intensity too low for
/// the RMW kernel to represent, or simulator errors.
pub fn trace_command(text: &str) -> Result<TraceArtifacts, SpecError> {
    use gables_plot::{render_timeline, utilization_row, TimelineRow, TimelineSpan};
    use gables_soc_sim::{run_gables_workload, telemetry, TimelineRecorder};

    let spec = Spec::parse(text)?;
    let soc = spec.soc()?;
    let workload = spec.workload()?;
    let names = spec.ip_names();

    // The spec workload maps onto engine jobs via the shared soc-sim
    // entrypoint (one RMW-kernel job per active IP), so `gables trace`
    // and `gables-serve`'s /simulate agree by construction.
    let mut recorder = TimelineRecorder::new();
    let run = run_gables_workload(&soc, &workload, &mut recorder)
        .map_err(|e| SpecError::general(e.to_string()))?;
    let epochs = recorder.epochs();

    // Bottleneck ribbon per IP (glyph = binding constraint) plus a
    // shaded DRAM-utilization row.
    let mut rows: Vec<TimelineRow> = names
        .iter()
        .map(|n| TimelineRow {
            label: n.clone(),
            spans: Vec::new(),
        })
        .collect();
    for e in epochs {
        for f in &e.flows {
            if let Some(row) = rows.get_mut(f.ip) {
                row.spans.push(TimelineSpan {
                    t_start: e.t_start,
                    t_end: e.t_end,
                    glyph: f.binding.glyph(),
                });
            }
        }
    }
    let dram_samples: Vec<(f64, f64, f64)> = epochs
        .iter()
        .map(|e| (e.t_start, e.t_end, e.dram_utilization))
        .collect();
    rows.push(utilization_row("DRAM", &dram_samples));

    let mut report = telemetry::text_report(&run, epochs, &names);
    report.push('\n');
    report.push_str("timeline (C compute, P port, F fabric, D DRAM, $ cache, S scratchpad;\n");
    report.push_str("          DRAM row shading = utilization):\n");
    report.push_str(&render_timeline(&rows, 64));

    Ok(TraceArtifacts {
        chrome_json: telemetry::chrome_trace_json(epochs, &names),
        csv: telemetry::csv_timeline(epochs, &names),
        report,
    })
}

/// `gables plot`: render the multi-roofline SVG.
pub fn plot_command(text: &str) -> Result<String, SpecError> {
    let data = plot_data_for(text)?;
    Ok(render_gables_plot(&data, "Gables"))
}

/// `gables ascii`: the same multi-roofline plot, drawn in the terminal.
pub fn ascii_command(text: &str) -> Result<String, SpecError> {
    let data = plot_data_for(text)?;
    let series: Vec<gables_plot::Series> = data
        .curves
        .iter()
        .map(|c| gables_plot::Series {
            label: c.label.clone(),
            points: c.points.clone(),
        })
        .collect();
    let mut out = gables_plot::render_ascii(&series, 72, 18, true, true);
    out.push_str(&format!(
        "Pattainable = {:.4} Gops/s at Iavg = {:.4} ops/byte ({})\n",
        data.attainable.1, data.attainable.0, data.bottleneck
    ));
    Ok(out)
}

fn plot_data_for(text: &str) -> Result<gables_model::viz::GablesPlotData, SpecError> {
    let spec = Spec::parse(text)?;
    let soc = spec.soc()?;
    let workload = spec.workload()?;
    // Frame the plot around the workload's intensities.
    let intensities: Vec<f64> = workload
        .assignments()
        .iter()
        .filter(|a| a.is_active())
        .map(|a| a.intensity().value())
        .collect();
    let lo = intensities.iter().cloned().fold(f64::INFINITY, f64::min) / 16.0;
    let hi = intensities.iter().cloned().fold(0.0, f64::max) * 16.0;
    Ok(gables_plot_data(
        &soc,
        &workload,
        lo.max(1e-6),
        hi.max(1.0),
        96,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_fs(_: &str) -> std::io::Result<String> {
        Err(std::io::Error::other("no filesystem in tests"))
    }

    #[test]
    fn example_prints_the_starter_spec() {
        let out = run(&["example".into()], &no_fs).unwrap();
        assert!(out.contains("[soc]"));
        assert!(out.contains("Figure 6b"));
    }

    #[test]
    fn eval_reports_bottleneck_and_sufficient_bpeak() {
        let out = eval_command(spec::FIGURE_6B_SPEC).unwrap();
        assert!(out.contains("Pattainable = 1.3278 Gops/s"));
        assert!(out.contains("bottleneck: memory interface"));
        assert!(out.contains("sufficient Bpeak"));
    }

    #[test]
    fn eval_with_sram_extension() {
        let text = format!(
            "{}\n[sram]\nmiss_ratios = 1.0, 0.05\n",
            spec::FIGURE_6B_SPEC
        );
        let out = eval_command(&text).unwrap();
        assert!(out.contains("with memory-side SRAM"));
    }

    #[test]
    fn sweep_f_walks_the_fraction() {
        let out = sweep_command(spec::FIGURE_6B_SPEC, "f", 0.0, 1.0, 4).unwrap();
        assert_eq!(out.lines().count(), 6);
        assert!(out.contains("0.0000"));
        assert!(out.contains("1.0000"));
    }

    #[test]
    fn sweep_bpeak_walks_bandwidth() {
        let out = sweep_command(spec::FIGURE_6B_SPEC, "bpeak", 5.0, 40.0, 4).unwrap();
        assert!(out.lines().count() >= 6);
        assert!(out.contains("Bpeak"));
    }

    #[test]
    fn sweep_argument_validation() {
        assert!(sweep_command(spec::FIGURE_6B_SPEC, "f", -0.5, 1.0, 4).is_err());
        assert!(sweep_command(spec::FIGURE_6B_SPEC, "f", 0.0, 1.0, 0).is_err());
        assert!(sweep_command(spec::FIGURE_6B_SPEC, "nope", 0.0, 1.0, 4).is_err());
    }

    #[test]
    fn whatif_replays_figure_6_from_6b() {
        // From the 6b spec: buy bandwidth (6c) then fix reuse + trim (6d).
        let out = whatif_command(
            spec::FIGURE_6B_SPEC,
            "set_bpeak 30; set_intensity 1 8; set_bpeak 20",
        )
        .unwrap();
        assert!(out.contains("baseline: 1.3278 Gops/s"));
        assert!(out.contains("160.0000 Gops/s"));
        assert!(out.contains("total:"));
    }

    #[test]
    fn whatif_rejects_bad_edits() {
        assert!(whatif_command(spec::FIGURE_6B_SPEC, "").is_err());
        assert!(whatif_command(spec::FIGURE_6B_SPEC, "frob 1").is_err());
        assert!(whatif_command(spec::FIGURE_6B_SPEC, "set_bpeak").is_err());
        assert!(whatif_command(spec::FIGURE_6B_SPEC, "set_bpeak banana").is_err());
        assert!(whatif_command(spec::FIGURE_6B_SPEC, "scale_bw 9 2").is_err());
    }

    #[test]
    fn frontier_walks_the_explore_grid() {
        let text = format!(
            "{}\n[explore]\naccelerations = 2, 5, 10\nb1_gbps = 5, 15, 30\nbpeak_gbps = 10, 20, 40\n",
            spec::FIGURE_6B_SPEC
        );
        let out = frontier_command(&text).unwrap();
        assert!(out.contains("27 candidates"));
        assert!(out.contains("Pareto frontier"));
        // Missing section is a clear error.
        let err = frontier_command(spec::FIGURE_6B_SPEC).unwrap_err();
        assert!(err.message.contains("[explore]"));
    }

    #[test]
    fn explore_grid_requires_two_ips() {
        let text = "[soc]\nppeak_gops = 1\nbpeak_gbps = 1\n[ip.CPU]\nbandwidth_gbps = 1\n[workload]\nfractions = 1\nintensities = 8\n[explore]\naccelerations = 2\nb1_gbps = 5\nbpeak_gbps = 10\n";
        let spec = spec::SpecFile::parse(text).unwrap();
        assert!(spec.explore_grid().unwrap_err().message.contains("two"));
    }

    #[test]
    fn ascii_draws_the_plot() {
        let out = ascii_command(spec::FIGURE_6B_SPEC).unwrap();
        assert!(out.contains("Pattainable = 1.3278 Gops/s"));
        assert!(out.contains("memory"));
        assert!(out.lines().count() > 18);
    }

    #[test]
    fn trace_produces_all_three_artifacts() {
        let a = trace_command(spec::FIGURE_6B_SPEC).unwrap();
        assert!(a.chrome_json.contains("\"traceEvents\""));
        assert!(a.chrome_json.contains("\"ph\":\"X\""));
        assert!(a.csv.starts_with("epoch,"));
        assert!(a.csv.lines().count() > 1);
        assert!(a.report.contains("Gables run report"));
        assert!(a.report.contains("per-job bottleneck attribution"));
        assert!(a.report.contains("CPU"));
        assert!(a.report.contains("GPU"));
        assert!(a.report.contains("timeline"));
    }

    #[test]
    fn trace_rejects_unrepresentable_intensity() {
        // I = 0.01 rounds below one flop per word on the RMW kernel.
        let text = FIGURE_6B_SPEC_WITH_TINY_INTENSITY;
        let err = trace_command(text).unwrap_err();
        assert!(err.message.contains("not representable"), "{}", err.message);
    }

    const FIGURE_6B_SPEC_WITH_TINY_INTENSITY: &str = "\
[soc]
ppeak_gops = 40
bpeak_gbps = 10
[ip.CPU]
bandwidth_gbps = 6
[ip.GPU]
acceleration = 5
bandwidth_gbps = 15
[workload]
fractions   = 0.25, 0.75
intensities = 8, 0.01
";

    #[test]
    fn run_trace_writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("gables-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("t").to_string_lossy().to_string();
        let fs = |_: &str| -> std::io::Result<String> { Ok(spec::FIGURE_6B_SPEC.to_string()) };
        let out = run(
            &["trace".into(), "fig6b.gables".into(), prefix.clone()],
            &fs,
        )
        .unwrap();
        assert!(out.contains("Gables run report"));
        assert!(out.contains("wrote"));
        for suffix in [".trace.json", ".timeline.csv", ".report.txt"] {
            let path = format!("{prefix}{suffix}");
            let written = std::fs::read_to_string(&path).unwrap();
            assert!(!written.is_empty(), "{path} empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plot_emits_svg() {
        let out = plot_command(spec::FIGURE_6B_SPEC).unwrap();
        assert!(out.starts_with("<svg"));
        assert!(out.contains("Pattainable"));
    }

    #[test]
    fn sweep_intensity_walks_the_roofline() {
        let out = sweep_command(spec::FIGURE_6B_SPEC, "intensity", 0.25, 64.0, 4).unwrap();
        assert_eq!(out.lines().count(), 6);
        assert!(out.starts_with("I(ops/B)"));
        // Attainment grows (or saturates) as intensity rises.
        let gops: Vec<f64> = out
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(gops.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{gops:?}");
        assert!(sweep_command(spec::FIGURE_6B_SPEC, "intensity", 0.0, 1.0, 4).is_err());
        assert!(sweep_command(spec::FIGURE_6B_SPEC, "intensity", 2.0, 1.0, 4).is_err());
    }

    #[test]
    fn run_dispatches_and_reports_unknowns() {
        assert!(run(&[], &no_fs).unwrap().contains("usage"));
        assert!(run(&["help".into()], &no_fs).unwrap().contains("usage"));
        let usage_text = run(&["help".into()], &no_fs).unwrap();
        for command in COMMANDS {
            assert!(usage_text.contains(command), "usage missing {command}");
        }
        let err = run(&["frobnicate".into()], &no_fs).unwrap_err();
        assert!(err.message.contains("unknown command"));
        // The error names every valid subcommand, serve included.
        for command in COMMANDS {
            assert!(err.message.contains(command), "error missing {command}");
        }
        let err = run(&["eval".into()], &no_fs).unwrap_err();
        assert!(err.message.contains("missing argument"));
        let err = run(&["eval".into(), "nope.gables".into()], &no_fs).unwrap_err();
        assert!(err.message.contains("nope.gables"));
    }

    #[test]
    fn threads_flag_is_accepted_everywhere_and_changes_nothing() {
        let fs = |_: &str| -> std::io::Result<String> { Ok(spec::FIGURE_6B_SPEC.to_string()) };
        let base: Vec<String> = ["sweep", "s.gables", "f", "0", "1", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let serial = run(&base, &fs).unwrap();
        for extra in [
            &["--threads", "2"][..],
            &["--threads=4"],
            &["--threads", "serial"],
        ] {
            let mut args = base.clone();
            args.extend(extra.iter().map(|s| s.to_string()));
            assert_eq!(run(&args, &fs).unwrap(), serial, "{extra:?}");
        }
        // The flag may appear anywhere, including before the subcommand.
        let mut args = vec!["--threads".to_string(), "2".to_string()];
        args.extend(base.iter().cloned());
        assert_eq!(run(&args, &fs).unwrap(), serial);

        let err = run(&["eval".into(), "s.gables".into(), "--threads".into()], &fs).unwrap_err();
        assert!(err.message.contains("--threads requires a value"), "{err}");
        let err = run(
            &[
                "eval".into(),
                "s.gables".into(),
                "--threads".into(),
                "0".into(),
            ],
            &fs,
        )
        .unwrap_err();
        assert!(err.message.contains("invalid --threads value"), "{err}");
        assert!(run(
            &["eval".into(), "s.gables".into(), "--threads=banana".into()],
            &fs
        )
        .is_err());
    }

    #[test]
    fn log_flags_are_accepted_everywhere_and_stripped() {
        let fs = |_: &str| -> std::io::Result<String> { Ok(spec::FIGURE_6B_SPEC.to_string()) };
        let base: Vec<String> = ["eval", "s.gables"].iter().map(|s| s.to_string()).collect();
        let plain = run(&base, &fs).unwrap();
        for extra in [
            &["--log", "warn"][..],
            &["--log=warn"],
            &["--log-format", "text"],
            &["--log-format=text"],
            &["--log", "warn", "--log-format", "text"],
        ] {
            let mut args = base.clone();
            args.extend(extra.iter().map(|s| s.to_string()));
            assert_eq!(run(&args, &fs).unwrap(), plain, "{extra:?}");
        }
        // The flags may precede the subcommand.
        let args: Vec<String> = ["--log", "warn", "eval", "s.gables"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, &fs).unwrap(), plain);

        let err = run(&["eval".into(), "s.gables".into(), "--log".into()], &fs).unwrap_err();
        assert!(err.message.contains("--log requires a value"), "{err}");
        let err = run(
            &["eval".into(), "s.gables".into(), "--log=loud".into()],
            &fs,
        )
        .unwrap_err();
        assert!(err.message.contains("invalid --log value"), "{err}");
        let err = run(
            &["eval".into(), "s.gables".into(), "--log-format".into()],
            &fs,
        )
        .unwrap_err();
        assert!(
            err.message.contains("--log-format requires a value"),
            "{err}"
        );
        let err = run(
            &["eval".into(), "s.gables".into(), "--log-format=xml".into()],
            &fs,
        )
        .unwrap_err();
        assert!(err.message.contains("invalid --log-format value"), "{err}");
        // Leave the process-global logging state at its defaults for the
        // other tests in this binary.
        gables_model::obs::set_level(Some(gables_model::obs::Level::Warn));
        gables_model::obs::set_format(gables_model::obs::LogFormat::Text);
    }

    #[test]
    fn sweep_is_identical_across_parallelism_policies() {
        let serial = sweep_command_with(
            spec::FIGURE_6B_SPEC,
            "bpeak",
            5.0,
            40.0,
            12,
            Parallelism::Serial,
        )
        .unwrap();
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let got =
                sweep_command_with(spec::FIGURE_6B_SPEC, "bpeak", 5.0, 40.0, 12, par).unwrap();
            assert_eq!(got, serial, "{par:?}");
        }
    }

    #[test]
    fn run_eval_through_injected_fs() {
        let fs = |path: &str| -> std::io::Result<String> {
            assert_eq!(path, "fig6b.gables");
            Ok(spec::FIGURE_6B_SPEC.to_string())
        };
        let out = run(&["eval".into(), "fig6b.gables".into()], &fs).unwrap();
        assert!(out.contains("1.3278"));
    }
}
