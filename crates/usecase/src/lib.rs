//! # gables-usecase
//!
//! Mobile-SoC application usecases as data, reproducing the software side
//! of the Gables paper's Section II: the Table I usecase/IP concurrency
//! matrix, the Figure 4 WiFi-streaming dataflow, the camera-pipeline
//! bandwidth arithmetic (4K240 ≈ 12 MB frames), and the derivation of
//! Gables `fi`/`Ii` inputs from a dataflow's standing demands.
//!
//! ## Example
//!
//! ```
//! use gables_usecase::{flows::streaming_wifi, gables::derive_inputs};
//!
//! let flow = streaming_wifi();
//! let inputs = derive_inputs(&flow)?;
//! assert_eq!(inputs.ips[0], gables_usecase::Ip::Ap);
//! # Ok::<(), gables_model::GablesError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod camera_flows;
pub mod flows;
pub mod gables;
pub mod ip;
pub mod table1;
pub mod video;

pub use flows::{Dataflow, Endpoint, Medium, Stage, Transfer};
pub use gables::{derive_inputs, GablesInputs};
pub use ip::Ip;
pub use table1::{render_table1, table1_usecases, Usecase};
pub use video::{CameraPipeline, ColorEncoding, FrameFormat, PipelineStage};
