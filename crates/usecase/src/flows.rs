//! Usecase dataflow graphs (Figure 4).
//!
//! A usecase is "best represented as application-level data flows from
//! sensors to the processing engines" (Section II-B). A [`Dataflow`] is a
//! graph of processing stages, each bound to an IP with a standing compute
//! demand, connected by transfers that name the *medium* the data crosses.
//! Transfers staged through DRAM cost a write plus a read — the base
//! Gables assumption that "all substantial inter-IP communication occurs
//! via DRAM memory".

use core::fmt;
use std::collections::BTreeMap;

use crate::ip::Ip;

/// Where a transfer's data is staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    /// Insecure system DRAM.
    Dram,
    /// Secure (DRM-protected) DRAM carve-out.
    SecureDram,
    /// A DRAM buffer DMA-ed into an IP-local SRAM (Figure 4's audio path).
    /// The standing traffic cost equals plain DRAM staging — write by the
    /// producer, DMA read by the consumer; what the SRAM buys is *reuse*
    /// and latency, which the Gables SRAM extension models.
    IpSram,
    /// A direct on-chip wire or doorbell (no memory staging).
    Direct,
}

impl Medium {
    /// How many DRAM crossings one transferred byte costs: a producer
    /// write plus a consumer read for every memory-staged medium, none
    /// for direct wires.
    pub fn dram_crossings(self) -> f64 {
        match self {
            Medium::Dram | Medium::SecureDram | Medium::IpSram => 2.0,
            Medium::Direct => 0.0,
        }
    }
}

/// One endpoint of a transfer: a pipeline stage, or the world outside the
/// SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Index into [`Dataflow::stages`].
    Stage(usize),
    /// Data entering from outside the SoC (antenna, sensor).
    Source,
    /// Data leaving the SoC (panel, speaker).
    Sink,
}

/// A processing stage bound to an IP.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name (e.g. `"video decode"`).
    pub name: String,
    /// The IP that runs it.
    pub ip: Ip,
    /// Standing compute demand, operations per second.
    pub ops_per_sec: f64,
}

/// A standing transfer between endpoints at a given rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Producer endpoint.
    pub from: Endpoint,
    /// Consumer endpoint.
    pub to: Endpoint,
    /// The staging medium.
    pub medium: Medium,
    /// Transfer rate, bytes per second.
    pub bytes_per_sec: f64,
}

/// A usecase dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataflow {
    /// Usecase name.
    pub name: String,
    /// Processing stages.
    pub stages: Vec<Stage>,
    /// Standing transfers.
    pub transfers: Vec<Transfer>,
}

/// Per-IP standing demands extracted from a dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct IpDemand {
    /// Compute demand, ops/second (summed over the IP's stages).
    pub ops_per_sec: f64,
    /// DRAM traffic attributable to the IP, bytes/second (its writes to
    /// and reads from staged buffers).
    pub dram_bytes_per_sec: f64,
}

impl Dataflow {
    /// Validates endpoint indices.
    ///
    /// # Errors
    ///
    /// Returns a description of the first dangling endpoint.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.transfers.iter().enumerate() {
            for ep in [t.from, t.to] {
                if let Endpoint::Stage(s) = ep {
                    if s >= self.stages.len() {
                        return Err(format!(
                            "transfer {i} references stage {s} but there are only {}",
                            self.stages.len()
                        ));
                    }
                }
            }
            if !t.bytes_per_sec.is_finite() || t.bytes_per_sec < 0.0 {
                return Err(format!("transfer {i} has invalid rate {}", t.bytes_per_sec));
            }
        }
        Ok(())
    }

    /// Total standing DRAM traffic, bytes per second (each staged transfer
    /// costs its medium's crossings).
    pub fn dram_bytes_per_sec(&self) -> f64 {
        self.transfers
            .iter()
            .map(|t| t.bytes_per_sec * t.medium.dram_crossings())
            .sum()
    }

    /// The set of IPs exercised by this dataflow.
    pub fn active_ips(&self) -> Vec<Ip> {
        let mut ips: Vec<Ip> = self.stages.iter().map(|s| s.ip).collect();
        ips.sort();
        ips.dedup();
        ips
    }

    /// Per-IP standing demands: compute from the stages, memory from the
    /// transfers each IP produces or consumes through a staged medium.
    pub fn ip_demands(&self) -> BTreeMap<Ip, IpDemand> {
        let mut out: BTreeMap<Ip, IpDemand> = BTreeMap::new();
        for s in &self.stages {
            let d = out.entry(s.ip).or_insert(IpDemand {
                ops_per_sec: 0.0,
                dram_bytes_per_sec: 0.0,
            });
            d.ops_per_sec += s.ops_per_sec;
        }
        for t in &self.transfers {
            if t.medium == Medium::Direct {
                continue;
            }
            // Writer pays one crossing, reader pays one. External
            // endpoints (source/sink) pay nothing — their side of the
            // buffer is filled/drained by the named stage itself.
            if let Endpoint::Stage(s) = t.from {
                if let Some(d) = out.get_mut(&self.stages[s].ip) {
                    d.dram_bytes_per_sec += t.bytes_per_sec;
                }
            }
            if let Endpoint::Stage(s) = t.to {
                if let Some(d) = out.get_mut(&self.stages[s].ip) {
                    d.dram_bytes_per_sec += t.bytes_per_sec;
                }
            }
        }
        out
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} stages, {} transfers, {:.3} GB/s standing DRAM traffic",
            self.name,
            self.stages.len(),
            self.transfers.len(),
            self.dram_bytes_per_sec() / 1e9
        )?;
        for t in &self.transfers {
            let name = |e: &Endpoint| match e {
                Endpoint::Stage(s) => self.stages[*s].name.clone(),
                Endpoint::Source => "<source>".into(),
                Endpoint::Sink => "<sink>".into(),
            };
            writeln!(
                f,
                "  {} -> {} [{:?}] {:.3} MB/s",
                name(&t.from),
                name(&t.to),
                t.medium,
                t.bytes_per_sec / 1e6
            )?;
        }
        Ok(())
    }
}

/// The Figure 4 usecase: streaming internet content over WiFi.
///
/// IP packets arrive over WiFi into an insecure buffer; the AP separates
/// audio/video; the crypto block decrypts into secure memory; the video
/// decoder produces frame buffers consumed by the display controller; the
/// audio DSP DMAs its stream into SRAM and drives the speaker.
///
/// Rates model a 1080p60 premium stream: 20 Mb/s video + 256 kb/s audio
/// elementary streams, 1920×1080 YUV420 at 60 FPS decoded output
/// (~186.6 MB/s).
pub fn streaming_wifi() -> Dataflow {
    let video_es = 20.0e6 / 8.0; // 20 Mb/s video elementary stream
    let audio_es = 256.0e3 / 8.0; // 256 kb/s audio
    let decoded = 1920.0 * 1080.0 * 1.5 * 60.0; // YUV420 frames
    let pcm = 48_000.0 * 2.0 * 2.0; // 48 kHz stereo 16-bit

    let stages = vec![
        Stage {
            name: "wifi rx".into(),
            ip: Ip::Modem,
            ops_per_sec: 0.5e9,
        },
        Stage {
            name: "demux".into(),
            ip: Ip::Ap,
            ops_per_sec: 0.3e9,
        },
        Stage {
            name: "decrypt".into(),
            ip: Ip::Crypto,
            ops_per_sec: 0.2e9,
        },
        Stage {
            name: "video decode".into(),
            ip: Ip::Vdec,
            ops_per_sec: 2.0e9,
        },
        Stage {
            name: "audio decode".into(),
            ip: Ip::AudioDsp,
            ops_per_sec: 0.05e9,
        },
        Stage {
            name: "scan-out".into(),
            ip: Ip::Display,
            ops_per_sec: 0.1e9,
        },
    ];
    let transfers = vec![
        Transfer {
            from: Endpoint::Source,
            to: Endpoint::Stage(0),
            medium: Medium::Direct,
            bytes_per_sec: video_es + audio_es,
        },
        // Packets land in an insecure user/application buffer.
        Transfer {
            from: Endpoint::Stage(0),
            to: Endpoint::Stage(1),
            medium: Medium::Dram,
            bytes_per_sec: video_es + audio_es,
        },
        // Demuxed streams to the crypto block.
        Transfer {
            from: Endpoint::Stage(1),
            to: Endpoint::Stage(2),
            medium: Medium::Dram,
            bytes_per_sec: video_es + audio_es,
        },
        // Decrypted video into secure memory for the decoder.
        Transfer {
            from: Endpoint::Stage(2),
            to: Endpoint::Stage(3),
            medium: Medium::SecureDram,
            bytes_per_sec: video_es,
        },
        // Decrypted audio; the DSP DMAs it into its SRAM.
        Transfer {
            from: Endpoint::Stage(2),
            to: Endpoint::Stage(4),
            medium: Medium::IpSram,
            bytes_per_sec: audio_es,
        },
        // Decoded frame buffers for the display controller.
        Transfer {
            from: Endpoint::Stage(3),
            to: Endpoint::Stage(5),
            medium: Medium::Dram,
            bytes_per_sec: decoded,
        },
        Transfer {
            from: Endpoint::Stage(5),
            to: Endpoint::Sink,
            medium: Medium::Direct,
            bytes_per_sec: decoded,
        },
        Transfer {
            from: Endpoint::Stage(4),
            to: Endpoint::Sink,
            medium: Medium::Direct,
            bytes_per_sec: pcm,
        },
    ];
    Dataflow {
        name: "Streaming internet content over WiFi".into(),
        stages,
        transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_wifi_validates() {
        let flow = streaming_wifi();
        flow.validate().unwrap();
        assert_eq!(flow.stages.len(), 6);
    }

    #[test]
    fn decoded_video_dominates_dram_traffic() {
        let flow = streaming_wifi();
        let total = flow.dram_bytes_per_sec();
        // Frame buffers: ~186.6 MB/s × 2 crossings ≈ 373 MB/s of the total.
        let frames = 1920.0 * 1080.0 * 1.5 * 60.0 * 2.0;
        assert!(
            frames / total > 0.95,
            "frames are {:.0}% of traffic",
            100.0 * frames / total
        );
        // And the whole usecase is far below a 30 GB/s SoC — streaming is
        // not the bandwidth-killer; HFR camera is (see `video`).
        assert!(total / 1e9 < 1.0);
    }

    #[test]
    fn active_ips_match_figure_4() {
        let flow = streaming_wifi();
        let ips = flow.active_ips();
        for ip in [
            Ip::Modem,
            Ip::Ap,
            Ip::Crypto,
            Ip::Vdec,
            Ip::AudioDsp,
            Ip::Display,
        ] {
            assert!(ips.contains(&ip), "{ip} missing");
        }
    }

    #[test]
    fn medium_crossing_costs() {
        assert_eq!(Medium::Dram.dram_crossings(), 2.0);
        assert_eq!(Medium::SecureDram.dram_crossings(), 2.0);
        assert_eq!(Medium::IpSram.dram_crossings(), 2.0);
        assert_eq!(Medium::Direct.dram_crossings(), 0.0);
    }

    #[test]
    fn ip_demands_attribute_reads_and_writes() {
        let flow = Dataflow {
            name: "t".into(),
            stages: vec![
                Stage {
                    name: "a".into(),
                    ip: Ip::Isp,
                    ops_per_sec: 1.0e9,
                },
                Stage {
                    name: "b".into(),
                    ip: Ip::Venc,
                    ops_per_sec: 2.0e9,
                },
            ],
            transfers: vec![Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(1),
                medium: Medium::Dram,
                bytes_per_sec: 100.0e6,
            }],
        };
        let demands = flow.ip_demands();
        assert_eq!(demands[&Ip::Isp].dram_bytes_per_sec, 100.0e6); // write
        assert_eq!(demands[&Ip::Venc].dram_bytes_per_sec, 100.0e6); // read
        assert_eq!(demands[&Ip::Venc].ops_per_sec, 2.0e9);
        // Total crossings match the graph-level accounting.
        let sum: f64 = demands.values().map(|d| d.dram_bytes_per_sec).sum();
        assert_eq!(sum, flow.dram_bytes_per_sec());
    }

    #[test]
    fn sram_dma_charges_the_consumer_one_read() {
        let flow = Dataflow {
            name: "t".into(),
            stages: vec![
                Stage {
                    name: "crypto".into(),
                    ip: Ip::Crypto,
                    ops_per_sec: 1.0,
                },
                Stage {
                    name: "audio".into(),
                    ip: Ip::AudioDsp,
                    ops_per_sec: 1.0,
                },
            ],
            transfers: vec![Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(1),
                medium: Medium::IpSram,
                bytes_per_sec: 1000.0,
            }],
        };
        let demands = flow.ip_demands();
        // Producer writes the staged buffer; the consumer's DMA reads it.
        assert_eq!(demands[&Ip::Crypto].dram_bytes_per_sec, 1000.0);
        assert_eq!(demands[&Ip::AudioDsp].dram_bytes_per_sec, 1000.0);
        let sum: f64 = demands.values().map(|d| d.dram_bytes_per_sec).sum();
        assert_eq!(sum, flow.dram_bytes_per_sec());
    }

    #[test]
    fn validate_catches_dangling_endpoints_and_bad_rates() {
        let mut flow = streaming_wifi();
        flow.transfers.push(Transfer {
            from: Endpoint::Stage(99),
            to: Endpoint::Sink,
            medium: Medium::Dram,
            bytes_per_sec: 1.0,
        });
        assert!(flow.validate().is_err());

        let mut flow = streaming_wifi();
        flow.transfers[0].bytes_per_sec = f64::NAN;
        assert!(flow.validate().is_err());
    }

    #[test]
    fn display_renders_flow() {
        let text = streaming_wifi().to_string();
        assert!(text.contains("video decode -> scan-out"));
        assert!(text.contains("<source>"));
    }
}
