//! Dataflow graphs for the camera usecases of Table I.
//!
//! Each builder returns a [`Dataflow`] whose stage set matches the
//! usecase's Table I row, so the concurrency matrix and the dataflow view
//! stay consistent (checked by test). Rates derive from the frame format
//! and frame rate via the [`video`](crate::video) arithmetic.

use crate::flows::{Dataflow, Endpoint, Medium, Stage, Transfer};
use crate::ip::Ip;
use crate::video::FrameFormat;

/// Video capture (Table I row 2): ISP frames to the encoder with preview,
/// audio on the DSP.
pub fn video_capture(format: FrameFormat, fps: f64) -> Dataflow {
    let frame_rate = format.frame_bytes() * fps;
    let preview_rate = FrameFormat::fhd_yuv420().frame_bytes() * fps.min(60.0);
    let pcm = 48_000.0 * 2.0 * 2.0;
    let bitstream = 40.0e6 / 8.0; // ~40 Mb/s encode output

    Dataflow {
        name: format!("Videocapture {}x{}@{fps}", format.width, format.height),
        stages: vec![
            Stage {
                name: "isp".into(),
                ip: Ip::Isp,
                ops_per_sec: frame_rate * 6.0, // ~6 ops/pixel-byte of ISP math
            },
            Stage {
                name: "encode".into(),
                ip: Ip::Venc,
                ops_per_sec: frame_rate * 4.0,
            },
            Stage {
                name: "preview".into(),
                ip: Ip::Display,
                ops_per_sec: preview_rate * 0.5,
            },
            Stage {
                name: "audio".into(),
                ip: Ip::Dsp,
                ops_per_sec: pcm * 50.0,
            },
            Stage {
                name: "control".into(),
                ip: Ip::Ap,
                ops_per_sec: 0.2e9,
            },
        ],
        transfers: vec![
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(0),
                medium: Medium::Direct,
                bytes_per_sec: frame_rate,
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(1),
                medium: Medium::Dram,
                bytes_per_sec: frame_rate,
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(2),
                medium: Medium::Dram,
                bytes_per_sec: preview_rate,
            },
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(3),
                medium: Medium::IpSram,
                bytes_per_sec: pcm,
            },
            Transfer {
                from: Endpoint::Stage(1),
                to: Endpoint::Sink,
                medium: Medium::Dram, // bitstream to flash via memory
                bytes_per_sec: bitstream,
            },
        ],
    }
}

/// High-frame-rate capture (Table I row 3): the scaler joins the path and
/// noise reduction re-reads reference frames.
pub fn video_capture_hfr(format: FrameFormat, fps: f64, reference_frames: u32) -> Dataflow {
    let frame_rate = format.frame_bytes() * fps;
    let tnr_reads = frame_rate * f64::from(reference_frames);
    Dataflow {
        name: format!("Videocapture HFR {}x{}@{fps}", format.width, format.height),
        stages: vec![
            Stage {
                name: "isp+tnr".into(),
                ip: Ip::Isp,
                ops_per_sec: (frame_rate + tnr_reads) * 4.0,
            },
            Stage {
                name: "scaler".into(),
                ip: Ip::G2ds,
                ops_per_sec: frame_rate,
            },
            Stage {
                name: "encode".into(),
                ip: Ip::Venc,
                ops_per_sec: frame_rate * 4.0,
            },
            Stage {
                name: "preview".into(),
                ip: Ip::Display,
                ops_per_sec: 0.1e9,
            },
            Stage {
                name: "control".into(),
                ip: Ip::Ap,
                ops_per_sec: 0.3e9,
            },
        ],
        transfers: vec![
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(0),
                medium: Medium::Direct,
                bytes_per_sec: frame_rate,
            },
            // TNR reference-frame traffic: the ISP re-reads references
            // from DRAM (modeled as a self-loop through memory).
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(0),
                medium: Medium::Dram,
                bytes_per_sec: tnr_reads / 2.0, // write once, read once = 2 crossings
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(1),
                medium: Medium::Dram,
                bytes_per_sec: frame_rate,
            },
            Transfer {
                from: Endpoint::Stage(1),
                to: Endpoint::Stage(2),
                medium: Medium::Dram,
                bytes_per_sec: frame_rate,
            },
            Transfer {
                from: Endpoint::Stage(1),
                to: Endpoint::Stage(3),
                medium: Medium::Dram,
                bytes_per_sec: FrameFormat::fhd_yuv420().frame_bytes() * 60.0,
            },
        ],
    }
}

/// HDR+ still capture (Table I row 1): a burst through ISP → IPU with
/// JPEG output and GPU-composited viewfinder.
pub fn hdr_plus() -> Dataflow {
    let format = FrameFormat::uhd_4k_yuv420();
    let burst_fps = 30.0; // burst of raw frames while the shot is open
    let frame_rate = format.frame_bytes() * burst_fps;
    let viewfinder = FrameFormat::fhd_yuv420().frame_bytes() * 60.0;
    Dataflow {
        name: "HDR+ burst capture".into(),
        stages: vec![
            Stage {
                name: "isp raw".into(),
                ip: Ip::Isp,
                ops_per_sec: frame_rate * 4.0,
            },
            Stage {
                name: "ipu align+merge".into(),
                ip: Ip::Ipu,
                ops_per_sec: frame_rate * 40.0, // the heavy HDR math
            },
            Stage {
                name: "jpeg encode".into(),
                ip: Ip::Jpeg,
                ops_per_sec: format.frame_bytes() * 2.0,
            },
            Stage {
                name: "viewfinder".into(),
                ip: Ip::Gpu,
                ops_per_sec: viewfinder * 4.0,
            },
            Stage {
                name: "scan-out".into(),
                ip: Ip::Display,
                ops_per_sec: 0.1e9,
            },
            Stage {
                name: "control".into(),
                ip: Ip::Ap,
                ops_per_sec: 0.5e9,
            },
        ],
        transfers: vec![
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(0),
                medium: Medium::Direct,
                bytes_per_sec: frame_rate,
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(1),
                medium: Medium::Dram,
                bytes_per_sec: frame_rate,
            },
            Transfer {
                from: Endpoint::Stage(1),
                to: Endpoint::Stage(2),
                medium: Medium::Dram,
                bytes_per_sec: format.frame_bytes(), // one merged frame/s
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(3),
                medium: Medium::Dram,
                bytes_per_sec: viewfinder,
            },
            Transfer {
                from: Endpoint::Stage(3),
                to: Endpoint::Stage(4),
                medium: Medium::Dram,
                bytes_per_sec: viewfinder,
            },
            Transfer {
                from: Endpoint::Stage(2),
                to: Endpoint::Sink,
                medium: Medium::Dram,
                bytes_per_sec: 5.0e6, // JPEG to storage
            },
        ],
    }
}

/// Video playback with UI (Table I row 4).
pub fn video_playback() -> Dataflow {
    let decoded = FrameFormat::uhd_4k_yuv420().frame_bytes() * 30.0;
    let ui = FrameFormat::fhd_yuv420().frame_bytes() * 60.0;
    let pcm = 48_000.0 * 2.0 * 2.0;
    Dataflow {
        name: "Videoplayback UI".into(),
        stages: vec![
            Stage {
                name: "decode".into(),
                ip: Ip::Vdec,
                ops_per_sec: decoded * 3.0,
            },
            Stage {
                name: "ui render".into(),
                ip: Ip::Gpu,
                ops_per_sec: ui * 4.0,
            },
            Stage {
                name: "compose+scan".into(),
                ip: Ip::Display,
                ops_per_sec: 0.2e9,
            },
            Stage {
                name: "audio".into(),
                ip: Ip::Dsp,
                ops_per_sec: pcm * 50.0,
            },
            Stage {
                name: "control".into(),
                ip: Ip::Ap,
                ops_per_sec: 0.2e9,
            },
        ],
        transfers: vec![
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(0),
                medium: Medium::Dram,
                bytes_per_sec: 20.0e6 / 8.0,
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(2),
                medium: Medium::Dram,
                bytes_per_sec: decoded,
            },
            Transfer {
                from: Endpoint::Stage(1),
                to: Endpoint::Stage(2),
                medium: Medium::Dram,
                bytes_per_sec: ui,
            },
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(3),
                medium: Medium::IpSram,
                bytes_per_sec: 256.0e3 / 8.0,
            },
            Transfer {
                from: Endpoint::Stage(2),
                to: Endpoint::Sink,
                medium: Medium::Direct,
                bytes_per_sec: decoded + ui,
            },
        ],
    }
}

/// Google Lens (Table I row 5): live camera with on-device vision
/// inference.
pub fn google_lens() -> Dataflow {
    let camera = FrameFormat::fhd_yuv420().frame_bytes() * 30.0;
    let features = 10.0e6; // feature maps between stages
    Dataflow {
        name: "Google Lens".into(),
        stages: vec![
            Stage {
                name: "isp".into(),
                ip: Ip::Isp,
                ops_per_sec: camera * 4.0,
            },
            Stage {
                name: "vision dsp".into(),
                ip: Ip::Dsp,
                ops_per_sec: 8.0e9, // CNN-ish inference load
            },
            Stage {
                name: "ipu features".into(),
                ip: Ip::Ipu,
                ops_per_sec: 12.0e9,
            },
            Stage {
                name: "overlay".into(),
                ip: Ip::Display,
                ops_per_sec: 0.1e9,
            },
            Stage {
                name: "app".into(),
                ip: Ip::Ap,
                ops_per_sec: 1.0e9,
            },
        ],
        transfers: vec![
            Transfer {
                from: Endpoint::Source,
                to: Endpoint::Stage(0),
                medium: Medium::Direct,
                bytes_per_sec: camera,
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(2),
                medium: Medium::Dram,
                bytes_per_sec: camera,
            },
            Transfer {
                from: Endpoint::Stage(2),
                to: Endpoint::Stage(1),
                medium: Medium::Dram,
                bytes_per_sec: features,
            },
            Transfer {
                from: Endpoint::Stage(1),
                to: Endpoint::Stage(4),
                medium: Medium::Dram,
                bytes_per_sec: 1.0e6, // results
            },
            Transfer {
                from: Endpoint::Stage(0),
                to: Endpoint::Stage(3),
                medium: Medium::Dram,
                bytes_per_sec: camera,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gables::derive_inputs;
    use crate::table1::table1_usecases;

    fn flows_with_rows() -> Vec<(Dataflow, &'static str)> {
        vec![
            (hdr_plus(), "HDR+"),
            (
                video_capture(FrameFormat::uhd_4k_yuv420(), 30.0),
                "Videocapture",
            ),
            (
                video_capture_hfr(FrameFormat::uhd_4k_yuv420(), 240.0, 5),
                "Videocapture (HFR)",
            ),
            (video_playback(), "Videoplayback UI"),
            (google_lens(), "Google Lens"),
        ]
    }

    #[test]
    fn all_camera_flows_validate() {
        for (flow, _) in flows_with_rows() {
            flow.validate().unwrap();
        }
    }

    #[test]
    fn dataflow_ips_match_table1_rows() {
        let usecases = table1_usecases();
        for (flow, row_name) in flows_with_rows() {
            let row = usecases
                .iter()
                .find(|u| u.name() == row_name)
                .unwrap_or_else(|| panic!("no Table I row {row_name}"));
            let flow_ips: Vec<Ip> = flow.active_ips();
            let row_ips: Vec<Ip> = row.active_ips().collect();
            assert_eq!(flow_ips, row_ips, "{row_name} dataflow vs Table I");
        }
    }

    #[test]
    fn hfr_4k240_dataflow_approaches_the_bandwidth_wall() {
        let flow = video_capture_hfr(FrameFormat::uhd_4k_yuv420(), 240.0, 5);
        // With per-frame noise-reduction re-reads, standing traffic is
        // many GB/s — the Section II-B story.
        assert!(
            flow.dram_bytes_per_sec() / 1e9 > 20.0,
            "only {:.1} GB/s",
            flow.dram_bytes_per_sec() / 1e9
        );
    }

    #[test]
    fn capture_30fps_is_far_from_the_wall() {
        let flow = video_capture(FrameFormat::uhd_4k_yuv420(), 30.0);
        assert!(flow.dram_bytes_per_sec() / 1e9 < 5.0);
    }

    #[test]
    fn every_flow_yields_gables_inputs() {
        for (flow, name) in flows_with_rows() {
            let inputs = derive_inputs(&flow).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(inputs.ips[0], Ip::Ap, "{name}: AP must be IP[0]");
            let sum: f64 = inputs
                .workload
                .assignments()
                .iter()
                .map(|a| a.fraction().value())
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn ipu_dominates_hdr_plus_compute() {
        let inputs = derive_inputs(&hdr_plus()).unwrap();
        let ipu = inputs.ips.iter().position(|&ip| ip == Ip::Ipu).unwrap();
        let f = inputs.workload.assignment(ipu).unwrap().fraction().value();
        assert!(f > 0.5, "IPU fraction {f}");
    }
}
