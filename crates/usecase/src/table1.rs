//! The camera-application usecases of Table I.
//!
//! Table I lists five usecases and marks which of ten IPs each exercises
//! *concurrently*. The published table's column marks are transcribed here
//! with per-row IP sets consistent with the row totals (six marks for HDR+,
//! five for each of the others) and with each usecase's dataflow as
//! described in Section II; see EXPERIMENTS.md for the transcription note.
//! The paper's headline observation — "across all of the camera usecases
//! ... at least half of all IPs are concurrently active" — is asserted in
//! this module's tests.

use std::collections::BTreeSet;

use crate::ip::Ip;

/// One application usecase: a name and the set of concurrently active IPs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Usecase {
    name: String,
    active: BTreeSet<Ip>,
}

impl Usecase {
    /// Creates a usecase from its active-IP set.
    pub fn new(name: impl Into<String>, active: impl IntoIterator<Item = Ip>) -> Self {
        Self {
            name: name.into(),
            active: active.into_iter().collect(),
        }
    }

    /// The usecase name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The concurrently active IPs.
    pub fn active_ips(&self) -> impl Iterator<Item = Ip> + '_ {
        self.active.iter().copied()
    }

    /// Whether the usecase exercises `ip`.
    pub fn uses(&self, ip: Ip) -> bool {
        self.active.contains(&ip)
    }

    /// Number of concurrently active IPs.
    pub fn concurrency(&self) -> usize {
        self.active.len()
    }
}

/// The five camera-application usecases of Table I.
pub fn table1_usecases() -> Vec<Usecase> {
    vec![
        // HDR+ still capture: sensor -> ISP -> IPU (HDR+ engine) -> JPEG,
        // with the AP orchestrating, the GPU compositing the viewfinder,
        // and the display controller scanning it out. Six IPs.
        Usecase::new(
            "HDR+",
            [Ip::Ap, Ip::Display, Ip::Gpu, Ip::Isp, Ip::Jpeg, Ip::Ipu],
        ),
        // Video capture: ISP produces frames, VENC encodes, DSP handles
        // audio, AP orchestrates, display shows the viewfinder. Five IPs.
        Usecase::new(
            "Videocapture",
            [Ip::Ap, Ip::Display, Ip::Isp, Ip::Venc, Ip::Dsp],
        ),
        // High-frame-rate capture adds the 2D scaler into the streaming
        // path (rate conversion) in place of the audio DSP. Five IPs.
        Usecase::new(
            "Videocapture (HFR)",
            [Ip::Ap, Ip::Display, Ip::G2ds, Ip::Isp, Ip::Venc],
        ),
        // Playback with UI: VDEC decodes, GPU renders UI, DSP plays audio.
        Usecase::new(
            "Videoplayback UI",
            [Ip::Ap, Ip::Display, Ip::Gpu, Ip::Vdec, Ip::Dsp],
        ),
        // Google Lens: live camera through the ISP with vision inference
        // on the DSP/IPU.
        Usecase::new(
            "Google Lens",
            [Ip::Ap, Ip::Display, Ip::Isp, Ip::Ipu, Ip::Dsp],
        ),
    ]
}

/// Renders Table I as text: one row per usecase, one column per IP, `X`
/// where the usecase exercises the IP.
pub fn render_table1() -> String {
    let usecases = table1_usecases();
    let mut s = format!("{:<20}", "Usecases");
    for ip in Ip::TABLE1_COLUMNS {
        s.push_str(&format!("{:>9}", ip.short_name()));
    }
    s.push('\n');
    for u in &usecases {
        s.push_str(&format!("{:<20}", u.name()));
        for ip in Ip::TABLE1_COLUMNS {
            s.push_str(&format!("{:>9}", if u.uses(ip) { "X" } else { "" }));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_usecases_with_paper_row_totals() {
        let usecases = table1_usecases();
        assert_eq!(usecases.len(), 5);
        let totals: Vec<usize> = usecases.iter().map(Usecase::concurrency).collect();
        // Table I: HDR+ has six marks, every other row five.
        assert_eq!(totals, vec![6, 5, 5, 5, 5]);
    }

    #[test]
    fn at_least_half_of_all_ips_concurrently_active() {
        // The paper's observation quoted in Section II-B.
        for u in table1_usecases() {
            assert!(
                u.concurrency() >= Ip::TABLE1_COLUMNS.len() / 2,
                "{} exercises only {} IPs",
                u.name(),
                u.concurrency()
            );
        }
    }

    #[test]
    fn different_usecases_use_different_ips() {
        // "Moreover, different usecases use different IPs simultaneously."
        let usecases = table1_usecases();
        for pair in usecases.windows(2) {
            let a: Vec<Ip> = pair[0].active_ips().collect();
            let b: Vec<Ip> = pair[1].active_ips().collect();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn every_usecase_involves_the_ap_and_display() {
        // IP coordination is routed through the CPU (Section II-B), and all
        // camera usecases are user-facing.
        for u in table1_usecases() {
            assert!(u.uses(Ip::Ap), "{} lacks the AP", u.name());
            assert!(u.uses(Ip::Display), "{} lacks the display", u.name());
        }
    }

    #[test]
    fn all_marks_fall_in_table1_columns() {
        for u in table1_usecases() {
            for ip in u.active_ips() {
                assert!(Ip::TABLE1_COLUMNS.contains(&ip));
            }
        }
    }

    #[test]
    fn render_has_header_plus_five_rows() {
        let text = render_table1();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("HDR+"));
        assert!(text.contains("Google Lens"));
        assert!(text.lines().next().unwrap().contains("VDEC"));
    }

    #[test]
    fn uses_and_concurrency_agree() {
        let u = Usecase::new("t", [Ip::Ap, Ip::Gpu]);
        assert!(u.uses(Ip::Ap));
        assert!(!u.uses(Ip::Dsp));
        assert_eq!(u.concurrency(), 2);
    }
}
