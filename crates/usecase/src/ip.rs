//! The IP-block vocabulary of a mobile SoC (Figure 3 / Table I).

use core::fmt;

/// The IP blocks named by the paper's Table I plus the additional engines
/// of Figures 3–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ip {
    /// Application processor (the CPU complex).
    Ap,
    /// Display controller.
    Display,
    /// 2D graphics/scaler block (G2DS).
    G2ds,
    /// Graphics processing unit.
    Gpu,
    /// Camera image signal processor.
    Isp,
    /// JPEG encoder.
    Jpeg,
    /// Image processing unit (e.g. Pixel Visual Core for HDR+).
    Ipu,
    /// Video decoder.
    Vdec,
    /// Video encoder.
    Venc,
    /// Digital signal processor (e.g. Hexagon).
    Dsp,
    /// Audio DSP front end.
    AudioDsp,
    /// Cellular/WiFi modem.
    Modem,
    /// Crypto/DRM engine.
    Crypto,
    /// GPS/WiFi/Bluetooth connectivity block.
    Connectivity,
}

impl Ip {
    /// The ten Table I columns, in the paper's order.
    pub const TABLE1_COLUMNS: [Ip; 10] = [
        Ip::Ap,
        Ip::Display,
        Ip::G2ds,
        Ip::Gpu,
        Ip::Isp,
        Ip::Jpeg,
        Ip::Ipu,
        Ip::Vdec,
        Ip::Venc,
        Ip::Dsp,
    ];

    /// The short label used in Table I's header.
    pub fn short_name(self) -> &'static str {
        match self {
            Ip::Ap => "AP",
            Ip::Display => "Display",
            Ip::G2ds => "G2DS",
            Ip::Gpu => "GPU",
            Ip::Isp => "ISP",
            Ip::Jpeg => "JPEG",
            Ip::Ipu => "IPU",
            Ip::Vdec => "VDEC",
            Ip::Venc => "VENC",
            Ip::Dsp => "DSP",
            Ip::AudioDsp => "AudioDSP",
            Ip::Modem => "Modem",
            Ip::Crypto => "Crypto",
            Ip::Connectivity => "GPS/WiFi/BT",
        }
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_ten_columns_in_paper_order() {
        assert_eq!(Ip::TABLE1_COLUMNS.len(), 10);
        assert_eq!(Ip::TABLE1_COLUMNS[0], Ip::Ap);
        assert_eq!(Ip::TABLE1_COLUMNS[9], Ip::Dsp);
    }

    #[test]
    fn short_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = Ip::TABLE1_COLUMNS
            .iter()
            .map(|ip| ip.short_name())
            .collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn display_matches_short_name() {
        assert_eq!(Ip::Gpu.to_string(), "GPU");
        assert_eq!(Ip::Connectivity.to_string(), "GPS/WiFi/BT");
    }
}
