//! Deriving Gables software inputs (`fi`, `Ii`) from a usecase dataflow.
//!
//! Gables models a usecase with a work fraction and an operational
//! intensity per IP (Table II). Given a [`Dataflow`]'s standing per-IP
//! demands, the fraction is the IP's share of total ops and the intensity
//! is its ops per DRAM byte — exactly the quantities the paper says an
//! architect must estimate for important usecases (conjectures 3 and 4).

use std::collections::BTreeMap;

use gables_model::{GablesError, Workload};

use crate::flows::Dataflow;
use crate::ip::Ip;

/// An intensity assigned to IPs that touch no DRAM at all (pure on-chip
/// processing); effectively "off the slanted roofline".
pub const COMPUTE_ONLY_INTENSITY: f64 = 1.0e6;

/// The derived Gables software inputs for one usecase.
#[derive(Debug, Clone, PartialEq)]
pub struct GablesInputs {
    /// IPs in workload order (index `i` in the Gables model).
    pub ips: Vec<Ip>,
    /// The derived workload (fractions + intensities, index-aligned with
    /// [`ips`](Self::ips)).
    pub workload: Workload,
    /// Total compute demand across the usecase, ops/second.
    pub total_ops_per_sec: f64,
}

/// Derives Gables `fi`/`Ii` inputs from a dataflow's standing demands.
///
/// The IP order is sorted with [`Ip::Ap`] first when present (Gables
/// reserves index 0 for the CPU complex), then the remaining IPs in enum
/// order.
///
/// # Errors
///
/// Returns [`GablesError`] if the dataflow has no compute demand at all.
///
/// # Examples
///
/// ```
/// use gables_usecase::flows::streaming_wifi;
/// use gables_usecase::gables::derive_inputs;
///
/// let inputs = derive_inputs(&streaming_wifi())?;
/// // Video decode dominates the compute in this usecase.
/// let vdec = inputs.ips.iter().position(|ip| *ip == gables_usecase::Ip::Vdec).unwrap();
/// let f = inputs.workload.assignment(vdec)?.fraction().value();
/// assert!(f > 0.5);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn derive_inputs(flow: &Dataflow) -> Result<GablesInputs, GablesError> {
    let demands = flow.ip_demands();
    let total_ops: f64 = demands.values().map(|d| d.ops_per_sec).sum();
    if total_ops <= 0.0 {
        return Err(GablesError::invalid_parameter(
            "total ops",
            total_ops,
            "dataflow has no compute demand",
        ));
    }

    let mut ips: Vec<Ip> = demands.keys().copied().collect();
    ips.sort_by_key(|ip| (*ip != Ip::Ap, *ip));

    let mut builder = Workload::builder();
    let mut remaining = 1.0;
    for (k, ip) in ips.iter().enumerate() {
        let d = &demands[ip];
        // Assign the exact residual to the final IP so fractions sum to 1
        // despite rounding.
        let f = if k == ips.len() - 1 {
            remaining
        } else {
            d.ops_per_sec / total_ops
        };
        remaining -= f;
        let intensity = if d.dram_bytes_per_sec > 0.0 {
            d.ops_per_sec / d.dram_bytes_per_sec
        } else {
            COMPUTE_ONLY_INTENSITY
        };
        builder.work(f.clamp(0.0, 1.0), intensity)?;
    }
    Ok(GablesInputs {
        ips,
        workload: builder.build()?,
        total_ops_per_sec: total_ops,
    })
}

/// A per-IP summary row for reporting: the derived `fi` and `Ii` next to
/// the raw demands they came from.
#[derive(Debug, Clone, PartialEq)]
pub struct InputRow {
    /// The IP.
    pub ip: Ip,
    /// Derived work fraction.
    pub fraction: f64,
    /// Derived operational intensity, ops/byte.
    pub intensity: f64,
    /// Raw compute demand, Gops/s.
    pub gops_per_sec: f64,
    /// Raw DRAM demand, GB/s.
    pub dram_gbps: f64,
}

/// Tabulates the derived inputs for display.
pub fn input_rows(flow: &Dataflow, inputs: &GablesInputs) -> Vec<InputRow> {
    let demands: BTreeMap<Ip, _> = flow.ip_demands();
    inputs
        .ips
        .iter()
        .enumerate()
        .map(|(i, ip)| {
            let a = inputs.workload.assignment(i).expect("aligned");
            let d = &demands[ip];
            InputRow {
                ip: *ip,
                fraction: a.fraction().value(),
                intensity: a.intensity().value(),
                gops_per_sec: d.ops_per_sec / 1e9,
                dram_gbps: d.dram_bytes_per_sec / 1e9,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::streaming_wifi;

    #[test]
    fn fractions_sum_to_one_and_align() {
        let flow = streaming_wifi();
        let inputs = derive_inputs(&flow).unwrap();
        assert_eq!(inputs.ips.len(), inputs.workload.ip_count());
        let sum: f64 = inputs
            .workload
            .assignments()
            .iter()
            .map(|a| a.fraction().value())
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ap_is_index_zero() {
        let inputs = derive_inputs(&streaming_wifi()).unwrap();
        assert_eq!(inputs.ips[0], Ip::Ap);
    }

    #[test]
    fn fractions_proportional_to_ops() {
        let flow = streaming_wifi();
        let inputs = derive_inputs(&flow).unwrap();
        let demands = flow.ip_demands();
        for (i, ip) in inputs.ips.iter().enumerate() {
            let expect = demands[ip].ops_per_sec / inputs.total_ops_per_sec;
            let got = inputs.workload.assignment(i).unwrap().fraction().value();
            assert!((got - expect).abs() < 1e-9, "{ip}: {got} vs {expect}");
        }
    }

    #[test]
    fn intensities_are_ops_per_dram_byte() {
        let flow = streaming_wifi();
        let inputs = derive_inputs(&flow).unwrap();
        let demands = flow.ip_demands();
        for (i, ip) in inputs.ips.iter().enumerate() {
            let d = &demands[ip];
            if d.dram_bytes_per_sec > 0.0 {
                let expect = d.ops_per_sec / d.dram_bytes_per_sec;
                let got = inputs.workload.assignment(i).unwrap().intensity().value();
                assert!((got / expect - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rows_match_workload() {
        let flow = streaming_wifi();
        let inputs = derive_inputs(&flow).unwrap();
        let rows = input_rows(&flow, &inputs);
        assert_eq!(rows.len(), inputs.ips.len());
        let total_f: f64 = rows.iter().map(|r| r.fraction).sum();
        assert!((total_f - 1.0).abs() < 1e-9);
        assert!(rows.iter().any(|r| r.ip == Ip::Vdec && r.fraction > 0.5));
    }

    #[test]
    fn empty_compute_is_rejected() {
        let flow = Dataflow {
            name: "idle".into(),
            stages: vec![],
            transfers: vec![],
        };
        assert!(derive_inputs(&flow).is_err());
    }
}
