//! Frame formats and camera-pipeline bandwidth arithmetic (Section II-B).
//!
//! The paper's motivating calculation: a 4K frame in YUV420 (6 bytes per 4
//! pixels) is ~12 MB; recording at 240 FPS while the ISP runs wavelet and
//! temporal noise reduction over as many as five reference frames moves
//! frames through DRAM fast enough to exhaust a mobile SoC's ~30 GB/s.

use core::fmt;

/// Pixel encodings and their storage cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColorEncoding {
    /// YUV 4:2:0 — 6 bytes per 4 pixels (1.5 bytes/pixel), the paper's
    /// example encoding.
    Yuv420,
    /// YUV 4:2:2 — 2 bytes/pixel.
    Yuv422,
    /// 8-bit RGBA — 4 bytes/pixel.
    Rgba8888,
    /// 10-bit packed RAW Bayer — 1.25 bytes/pixel.
    Raw10,
}

impl ColorEncoding {
    /// Storage cost in bytes per pixel.
    pub fn bytes_per_pixel(self) -> f64 {
        match self {
            ColorEncoding::Yuv420 => 1.5,
            ColorEncoding::Yuv422 => 2.0,
            ColorEncoding::Rgba8888 => 4.0,
            ColorEncoding::Raw10 => 1.25,
        }
    }
}

/// A video frame format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFormat {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Pixel encoding.
    pub encoding: ColorEncoding,
}

impl FrameFormat {
    /// The paper's 4K example: 3840×2160 YUV420.
    pub fn uhd_4k_yuv420() -> Self {
        Self {
            width: 3840,
            height: 2160,
            encoding: ColorEncoding::Yuv420,
        }
    }

    /// 1080p YUV420.
    pub fn fhd_yuv420() -> Self {
        Self {
            width: 1920,
            height: 1080,
            encoding: ColorEncoding::Yuv420,
        }
    }

    /// Frame size in bytes.
    pub fn frame_bytes(&self) -> f64 {
        f64::from(self.width) * f64::from(self.height) * self.encoding.bytes_per_pixel()
    }

    /// Frame size in megabytes (10^6 bytes, as the paper quotes "12 MB").
    pub fn frame_megabytes(&self) -> f64 {
        self.frame_bytes() / 1.0e6
    }
}

impl fmt::Display for FrameFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} ({:.2} MB/frame)",
            self.width,
            self.height,
            self.frame_megabytes()
        )
    }
}

/// One processing stage of a camera pipeline and how many times it moves
/// each frame through DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStage {
    /// Stage name (e.g. `"WNR"`, `"TNR"`).
    pub name: String,
    /// Full-frame reads from DRAM per frame processed.
    pub frame_reads: f64,
    /// Full-frame writes to DRAM per frame processed.
    pub frame_writes: f64,
}

impl PipelineStage {
    /// Wavelet noise reduction: read the frame, write the cleaned frame.
    pub fn wnr() -> Self {
        Self {
            name: "WNR".into(),
            frame_reads: 1.0,
            frame_writes: 1.0,
        }
    }

    /// Temporal noise reduction tracking `references` previous frames:
    /// reads the new frame plus every reference, writes one output.
    pub fn tnr(references: u32) -> Self {
        Self {
            name: format!("TNR({references} refs)"),
            frame_reads: 1.0 + f64::from(references),
            frame_writes: 1.0,
        }
    }

    /// Video encode: reads the frame (compressed output is negligible
    /// next to raw frames).
    pub fn encode() -> Self {
        Self {
            name: "VENC".into(),
            frame_reads: 1.0,
            frame_writes: 0.0,
        }
    }

    /// Display scan-out: reads the frame.
    pub fn scanout() -> Self {
        Self {
            name: "Display".into(),
            frame_reads: 1.0,
            frame_writes: 0.0,
        }
    }

    /// Sensor/ISP capture: writes the frame into DRAM.
    pub fn capture() -> Self {
        Self {
            name: "ISP capture".into(),
            frame_reads: 0.0,
            frame_writes: 1.0,
        }
    }
}

/// A camera pipeline: frames of one format flowing through DRAM-staged
/// stages at a target frame rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraPipeline {
    /// The frame format.
    pub format: FrameFormat,
    /// Frames per second.
    pub fps: f64,
    /// The DRAM-staged stages.
    pub stages: Vec<PipelineStage>,
}

impl CameraPipeline {
    /// The paper's high-frame-rate recording example: 4K at 240 FPS with
    /// capture, WNR, TNR over five reference frames, encode, and scan-out.
    pub fn hfr_4k240() -> Self {
        Self {
            format: FrameFormat::uhd_4k_yuv420(),
            fps: 240.0,
            stages: vec![
                PipelineStage::capture(),
                PipelineStage::wnr(),
                PipelineStage::tnr(5),
                PipelineStage::encode(),
                PipelineStage::scanout(),
            ],
        }
    }

    /// Total DRAM traffic in bytes per second: frame size × fps × total
    /// frame movements across all stages.
    pub fn dram_bytes_per_sec(&self) -> f64 {
        let movements: f64 = self
            .stages
            .iter()
            .map(|s| s.frame_reads + s.frame_writes)
            .sum();
        self.format.frame_bytes() * self.fps * movements
    }

    /// Total DRAM traffic in GB/s.
    pub fn dram_gbps(&self) -> f64 {
        self.dram_bytes_per_sec() / 1.0e9
    }

    /// Whether the pipeline's standing DRAM demand alone exceeds a SoC's
    /// memory bandwidth (the Section II-B bottleneck argument).
    pub fn saturates(&self, soc_bpeak_gbps: f64) -> bool {
        self.dram_gbps() > soc_bpeak_gbps
    }

    /// The highest frame rate the given bandwidth could sustain for this
    /// pipeline.
    pub fn max_fps(&self, soc_bpeak_gbps: f64) -> f64 {
        self.fps * soc_bpeak_gbps / self.dram_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frame_size_is_about_12_mb() {
        let f = FrameFormat::uhd_4k_yuv420();
        // 3840*2160*1.5 = 12,441,600 bytes ≈ 12 MB.
        assert!((f.frame_bytes() - 12_441_600.0).abs() < 1.0);
        assert!((f.frame_megabytes() - 12.44).abs() < 0.01);
    }

    #[test]
    fn yuv420_is_six_bytes_per_four_pixels() {
        assert!((ColorEncoding::Yuv420.bytes_per_pixel() - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn hfr_4k240_saturates_a_30_gbps_soc() {
        // The paper's claim: 4K240 with noise reduction and five reference
        // frames "can cause the memory bandwidth of a mobile SoC (around
        // 30 GB/s) to become the bottleneck".
        let p = CameraPipeline::hfr_4k240();
        assert!(
            p.dram_gbps() > 30.0,
            "pipeline only demands {:.1} GB/s",
            p.dram_gbps()
        );
        assert!(p.saturates(30.0));
        assert!(p.max_fps(30.0) < 240.0);
    }

    #[test]
    fn fhd30_playback_is_comfortable() {
        let p = CameraPipeline {
            format: FrameFormat::fhd_yuv420(),
            fps: 30.0,
            stages: vec![PipelineStage::capture(), PipelineStage::scanout()],
        };
        assert!(!p.saturates(30.0));
        assert!(p.dram_gbps() < 1.0);
    }

    #[test]
    fn tnr_reads_scale_with_references() {
        let t3 = PipelineStage::tnr(3);
        let t5 = PipelineStage::tnr(5);
        assert_eq!(t3.frame_reads, 4.0);
        assert_eq!(t5.frame_reads, 6.0);
        assert!(t5.name.contains('5'));
    }

    #[test]
    fn traffic_arithmetic() {
        let p = CameraPipeline {
            format: FrameFormat {
                width: 1000,
                height: 1000,
                encoding: ColorEncoding::Rgba8888,
            },
            fps: 10.0,
            stages: vec![PipelineStage::wnr()], // 1 read + 1 write
        };
        // 4 MB frame × 10 fps × 2 movements = 80 MB/s.
        assert!((p.dram_bytes_per_sec() - 80.0e6).abs() < 1.0);
    }

    #[test]
    fn max_fps_is_consistent_with_saturates() {
        let p = CameraPipeline::hfr_4k240();
        let cap = p.max_fps(30.0);
        let feasible = CameraPipeline {
            fps: cap,
            ..p.clone()
        };
        assert!((feasible.dram_gbps() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        let text = FrameFormat::uhd_4k_yuv420().to_string();
        assert!(text.contains("3840x2160"));
        assert!(text.contains("12.44 MB/frame"));
    }
}
